#include "isp/nearest_neighbor.hh"

#include <utility>

namespace bluedbm {
namespace isp {

void
NearestNeighborEngine::query(flash::PageBuffer query,
                             std::vector<core::GlobalAddress>
                                 candidates,
                             Done done)
{
    struct State
    {
        flash::PageBuffer query;
        std::vector<core::GlobalAddress> candidates;
        std::size_t nextIssue = 0;
        std::size_t completed = 0;
        NnResult result;
        Done done;
    };
    auto st = std::make_shared<State>();
    st->query = std::move(query);
    st->candidates = std::move(candidates);
    st->done = std::move(done);

    if (st->candidates.empty()) {
        node_.ispReadDeviceDram(0, [st]() {
            st->done(std::move(st->result));
        });
        return;
    }

    // Keep up to `window_` candidate reads in flight; distance
    // computation is pipelined in hardware (it happens at line rate
    // as bursts arrive, so it costs no extra simulated time).
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [this, st, pump]() {
        while (st->nextIssue < st->candidates.size() &&
               st->nextIssue - st->completed < window_) {
            std::size_t idx = st->nextIssue++;
            const core::GlobalAddress &ga = st->candidates[idx];
            node_.ispReadRemote(
                ga.node, ga.card, ga.addr,
                [this, st, pump, idx](flash::PageBuffer page) {
                std::uint64_t d = analytics::hammingDistance(
                    st->query.data(), page.data(),
                    std::min(st->query.size(), page.size()));
                ++st->result.comparisons;
                if (d < st->result.bestDistance) {
                    st->result.bestDistance = d;
                    st->result.bestIndex = idx;
                }
                ++st->completed;
                if (st->completed == st->candidates.size()) {
                    st->done(std::move(st->result));
                    return;
                }
                (*pump)();
            });
        }
    };
    (*pump)();
}

} // namespace isp
} // namespace bluedbm
