#include "isp/string_search.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace isp {

using flash::PageBuffer;
using flash::Status;

void
StringSearchEngine::search(std::uint32_t handle,
                           std::uint64_t file_bytes,
                           std::uint32_t page_size_in,
                           const std::string &needle, Done done)
{
    const auto *pages = server_.handlePages(handle);
    if (!pages)
        sim::fatal("search on unpublished handle %u", handle);

    struct Shared
    {
        MpPattern pattern;
        SearchResult result;
        unsigned remaining = 0;
        Done done;

        explicit Shared(const std::string &n) : pattern(n) {}
    };
    auto shared = std::make_shared<Shared>(needle);
    shared->done = std::move(done);

    std::uint64_t total_pages = pages->size();
    if (total_pages == 0) {
        sim_.scheduleAfter(0, [shared]() {
            shared->done(std::move(shared->result));
        });
        return;
    }
    std::uint64_t page_size = page_size_in;
    if (page_size == 0 ||
        (total_pages - 1) * page_size >= file_bytes ||
        file_bytes > total_pages * page_size)
        sim::fatal("file size %llu inconsistent with %llu pages of "
                   "%llu bytes",
                   static_cast<unsigned long long>(file_bytes),
                   static_cast<unsigned long long>(total_pages),
                   static_cast<unsigned long long>(page_size));

    unsigned ifcs = server_.interfaces();
    std::uint64_t overlap = needle.size() - 1;
    std::uint64_t pages_per_seg =
        (total_pages + ifcs - 1) / ifcs;

    unsigned launched = 0;
    for (unsigned ifc = 0; ifc < ifcs; ++ifc) {
        std::uint64_t first_page = std::uint64_t(ifc) * pages_per_seg;
        if (first_page >= total_pages)
            break;
        std::uint64_t seg_start = first_page * page_size;
        std::uint64_t seg_end =
            std::min((first_page + pages_per_seg) * page_size,
                     file_bytes);
        std::uint64_t ext_end = std::min(seg_end + overlap,
                                         file_bytes);
        std::uint64_t last_page =
            (ext_end + page_size - 1) / page_size;

        ++launched;
        ++shared->remaining;

        struct SegState
        {
            MpMatcher matcher;
            std::uint64_t pos;
            std::uint64_t segStart;
            std::uint64_t segEnd;
            std::uint64_t extEnd;
            std::vector<std::uint64_t> matches;

            SegState(const MpPattern &p, std::uint64_t start)
                : matcher(p), pos(start), segStart(start)
            {
            }
        };
        auto seg = std::make_shared<SegState>(shared->pattern,
                                              seg_start);
        seg->segEnd = seg_end;
        seg->extEnd = ext_end;

        std::uint64_t count = last_page - first_page;
        std::uint64_t expected_pages = count;
        auto pages_seen = std::make_shared<std::uint64_t>(0);
        server_.streamRead(
            ifc, handle, first_page, count,
            [this, shared, seg, expected_pages, pages_seen](
                PageBuffer page, Status st) {
            if (st == Status::Uncorrectable)
                sim::warn("uncorrectable page during search");
            std::uint64_t take = std::min<std::uint64_t>(
                page.size(), seg->extEnd - seg->pos);
            seg->matcher.feed(page.data(), take, seg->pos,
                              seg->matches);
            seg->pos += take;
            shared->result.bytesScanned += take;
            if (++*pages_seen == expected_pages) {
                // Keep only matches owned by this segment (matches
                // starting in the overlap belong to the next one).
                for (std::uint64_t m : seg->matches) {
                    if (m >= seg->segStart && m < seg->segEnd)
                        shared->result.positions.push_back(m);
                }
                if (--shared->remaining == 0) {
                    std::sort(shared->result.positions.begin(),
                              shared->result.positions.end());
                    shared->done(std::move(shared->result));
                }
            }
        });
    }
    if (launched == 0) {
        sim_.scheduleAfter(0, [shared]() {
            shared->done(std::move(shared->result));
        });
    }
}

} // namespace isp
} // namespace bluedbm
