/**
 * @file
 * Morris-Pratt string matching (paper section 7.3).
 *
 * The in-store string search engines are hardware Morris-Pratt
 * matchers: the host transfers the needle and its precomputed MP
 * constants (the failure function) once, then streams haystack pages
 * through the engine. The streaming matcher below is the exact
 * algorithm: O(1) amortized work per input byte, no backtracking in
 * the text, so it consumes data at line rate -- which is why the
 * hardware engines run at flash bandwidth.
 */

#ifndef BLUEDBM_ISP_MORRIS_PRATT_HH
#define BLUEDBM_ISP_MORRIS_PRATT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bluedbm {
namespace isp {

/**
 * Precomputed Morris-Pratt constants for one needle.
 */
class MpPattern
{
  public:
    /** @param needle pattern to search for (non-empty) */
    explicit MpPattern(std::string needle);

    /** The pattern. */
    const std::string &needle() const { return needle_; }

    /** MP failure function (the "precomputed MP constants"). */
    const std::vector<std::uint32_t> &failure() const
    {
        return failure_;
    }

  private:
    std::string needle_;
    std::vector<std::uint32_t> failure_;
};

/**
 * Streaming Morris-Pratt matcher: feed bytes (across page
 * boundaries), collect match end positions.
 */
class MpMatcher
{
  public:
    /** @param pattern precomputed constants (must outlive matcher) */
    explicit MpMatcher(const MpPattern &pattern)
        : pattern_(pattern)
    {
    }

    /**
     * Consume one byte; returns true when a match *ends* at this
     * byte.
     */
    bool
    feed(std::uint8_t byte)
    {
        const std::string &n = pattern_.needle();
        const auto &fail = pattern_.failure();
        while (state_ > 0 &&
               byte != static_cast<std::uint8_t>(n[state_]))
            state_ = fail[state_ - 1];
        if (byte == static_cast<std::uint8_t>(n[state_]))
            ++state_;
        if (state_ == n.size()) {
            state_ = fail[state_ - 1];
            return true;
        }
        return false;
    }

    /**
     * Consume a buffer; match *start* offsets (relative to the
     * stream position @p base) append to @p matches.
     */
    void
    feed(const std::uint8_t *data, std::size_t len,
         std::uint64_t base, std::vector<std::uint64_t> &matches)
    {
        for (std::size_t i = 0; i < len; ++i) {
            if (feed(data[i]))
                matches.push_back(base + i + 1 -
                                  pattern_.needle().size());
        }
    }

    /** Reset the stream state. */
    void reset() { state_ = 0; }

  private:
    const MpPattern &pattern_;
    std::size_t state_ = 0;
};

} // namespace isp
} // namespace bluedbm

#endif // BLUEDBM_ISP_MORRIS_PRATT_HH
