/**
 * @file
 * In-store string search accelerator (paper section 7.3).
 *
 * The software side transfers the needle and its MP constants over
 * DMA, then streams the file's physical addresses; the hardware MP
 * engines read pages from the flash controller and only match
 * positions come back to the server. Four engines per bus saturate
 * the flash; engines split the haystack into per-interface segments
 * with needle-sized overlaps.
 */

#ifndef BLUEDBM_ISP_STRING_SEARCH_HH
#define BLUEDBM_ISP_STRING_SEARCH_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "flash/flash_server.hh"
#include "isp/morris_pratt.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace isp {

/**
 * Result of one accelerated search.
 */
struct SearchResult
{
    std::vector<std::uint64_t> positions; //!< match byte offsets
    std::uint64_t bytesScanned = 0;
};

/**
 * Hardware string search over one flash card.
 */
class StringSearchEngine
{
  public:
    using Done = std::function<void(SearchResult)>;

    /**
     * @param sim    simulation kernel
     * @param server the ISP-side flash server of the card
     */
    StringSearchEngine(sim::Simulator &sim,
                       flash::FlashServer &server)
        : sim_(sim), server_(server)
    {
    }

    /**
     * Search file @p handle (already published to the server's ATU)
     * for @p needle, using every server interface in parallel.
     *
     * @param handle     ATU file handle
     * @param file_bytes logical file size (the last page may be
     *                   partially filled)
     * @param page_size  flash page size backing the file
     * @param needle     pattern
     * @param done       receives sorted match positions
     */
    void search(std::uint32_t handle, std::uint64_t file_bytes,
                std::uint32_t page_size, const std::string &needle,
                Done done);

  private:
    sim::Simulator &sim_;
    flash::FlashServer &server_;
};

} // namespace isp
} // namespace bluedbm

#endif // BLUEDBM_ISP_STRING_SEARCH_HH
