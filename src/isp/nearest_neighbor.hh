/**
 * @file
 * In-store nearest-neighbor (Hamming) accelerator (paper section
 * 7.1).
 *
 * The software sends a stream of page addresses from an LSH hash
 * bucket along with the query page; the engine reads each candidate
 * from flash -- local or remote via the integrated network -- and
 * computes the Hamming distance in store, returning only the index
 * of the closest item.
 */

#ifndef BLUEDBM_ISP_NEAREST_NEIGHBOR_HH
#define BLUEDBM_ISP_NEAREST_NEIGHBOR_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "analytics/hamming.hh"
#include "core/cluster.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace isp {

/**
 * Outcome of one nearest-neighbor query.
 */
struct NnResult
{
    std::uint64_t bestIndex = 0; //!< position in the candidate list
    std::uint64_t bestDistance =
        std::numeric_limits<std::uint64_t>::max();
    std::uint64_t comparisons = 0;
};

/**
 * Nearest-neighbor engine bound to one node's in-store processor.
 */
class NearestNeighborEngine
{
  public:
    using Done = std::function<void(NnResult)>;

    /**
     * @param node   node whose ISP runs the engine
     * @param window candidate reads kept in flight (hardware
     *               pipelining depth)
     */
    NearestNeighborEngine(core::Node &node, unsigned window = 32)
        : node_(node), window_(window)
    {
    }

    /**
     * Find the candidate closest to @p query.
     *
     * @param query      query page content
     * @param candidates global addresses of the candidate pages
     *                   (may span remote nodes)
     * @param done       result callback
     */
    void query(flash::PageBuffer query,
               std::vector<core::GlobalAddress> candidates,
               Done done);

  private:
    core::Node &node_;
    unsigned window_;
};

} // namespace isp
} // namespace bluedbm

#endif // BLUEDBM_ISP_NEAREST_NEIGHBOR_HH
