/**
 * @file
 * Accelerator scheduler (paper section 4).
 *
 * Multiple instances of user applications compete for the same
 * hardware acceleration units; BlueDBM runs a scheduler that assigns
 * available units to waiting applications with a simple FIFO policy.
 */

#ifndef BLUEDBM_ISP_SCHEDULER_HH
#define BLUEDBM_ISP_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace isp {

/**
 * FIFO scheduler for a pool of identical accelerator units.
 */
class AcceleratorScheduler
{
  public:
    /**
     * A job receives the unit index it was granted and a release
     * callback it must invoke when the accelerator is free again.
     */
    using Job = std::function<void(unsigned unit,
                                   std::function<void()> release)>;

    /**
     * @param sim   simulation kernel
     * @param units number of identical accelerator units
     */
    AcceleratorScheduler(sim::Simulator &sim, unsigned units)
        : sim_(sim)
    {
        if (units == 0)
            sim::fatal("scheduler needs at least one unit");
        for (unsigned u = units; u-- > 0;)
            freeUnits_.push_back(u);
    }

    /** Queue @p job; it runs when a unit frees, FIFO order. */
    void
    submit(Job job)
    {
        queue_.push_back(std::move(job));
        pump();
    }

    /** Jobs waiting for a unit. */
    std::size_t queued() const { return queue_.size(); }

    /** Units currently free. */
    std::size_t freeUnits() const { return freeUnits_.size(); }

    /** Jobs granted so far. */
    std::uint64_t granted() const { return granted_; }

  private:
    void
    pump()
    {
        while (!queue_.empty() && !freeUnits_.empty()) {
            unsigned unit = freeUnits_.back();
            freeUnits_.pop_back();
            Job job = std::move(queue_.front());
            queue_.pop_front();
            ++granted_;
            // Run the job from the event loop so submit() never
            // reenters user code synchronously.
            sim_.scheduleAfter(0, [this, unit,
                                   job = std::move(job)]() {
                job(unit, [this, unit]() {
                    freeUnits_.push_back(unit);
                    pump();
                });
            });
        }
    }

    sim::Simulator &sim_;
    std::deque<Job> queue_;
    std::vector<unsigned> freeUnits_;
    std::uint64_t granted_ = 0;
};

} // namespace isp
} // namespace bluedbm

#endif // BLUEDBM_ISP_SCHEDULER_HH
