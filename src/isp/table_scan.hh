/**
 * @file
 * In-store SQL table scan with predicate pushdown -- the "SQL
 * Database Acceleration by offloading query processing and filtering
 * to in-store processors" the paper names as planned work (section
 * 8), in the style of Ibex [48] which it cites.
 *
 * Tables are fixed-width records packed into flash pages (records do
 * not span pages). The host pushes a conjunction of column
 * predicates; the engine streams the table at flash bandwidth and
 * returns only matching records -- so the host link carries the
 * selectivity-scaled output instead of the whole table.
 */

#ifndef BLUEDBM_ISP_TABLE_SCAN_HH
#define BLUEDBM_ISP_TABLE_SCAN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "flash/flash_server.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace isp {

/**
 * Fixed-width record layout: byte width per column, in order.
 * Column values are unsigned little-endian integers of 1-8 bytes.
 */
class RecordSchema
{
  public:
    /** @param widths per-column byte widths (each 1..8) */
    explicit RecordSchema(std::vector<std::uint32_t> widths);

    /** Total record width in bytes. */
    std::uint32_t recordBytes() const { return recordBytes_; }

    /** Number of columns. */
    std::uint32_t columns() const
    {
        return std::uint32_t(offsets_.size());
    }

    /** Byte offset of column @p c within a record. */
    std::uint32_t offset(std::uint32_t c) const
    {
        return offsets_.at(c);
    }

    /** Byte width of column @p c. */
    std::uint32_t width(std::uint32_t c) const
    {
        return widths_.at(c);
    }

    /** Extract column @p c of the record at @p record. */
    std::uint64_t extract(const std::uint8_t *record,
                          std::uint32_t c) const;

    /** Store @p value into column @p c of @p record. */
    void store(std::uint8_t *record, std::uint32_t c,
               std::uint64_t value) const;

    /** Records that fit one page of @p page_size. */
    std::uint32_t
    recordsPerPage(std::uint32_t page_size) const
    {
        return page_size / recordBytes_;
    }

  private:
    std::vector<std::uint32_t> widths_;
    std::vector<std::uint32_t> offsets_;
    std::uint32_t recordBytes_ = 0;
};

/** Comparison operators for predicates. */
enum class CmpOp { Eq, Ne, Lt, Le, Gt, Ge };

/**
 * One column predicate; a query is a conjunction of these.
 */
struct Predicate
{
    std::uint32_t column = 0;
    CmpOp op = CmpOp::Eq;
    std::uint64_t value = 0;

    /** Evaluate against a column value. */
    bool matches(std::uint64_t v) const;
};

/**
 * Result of an in-store scan.
 */
struct ScanResult
{
    /** Row indices of matching records (table order). */
    std::vector<std::uint64_t> rows;
    /** Matching records' bytes, concatenated (the data that would
     * cross PCIe). */
    std::vector<std::uint8_t> records;
    std::uint64_t rowsScanned = 0;
    std::uint64_t bytesScanned = 0;
};

/**
 * In-store filtering table scan over one flash card.
 */
class TableScanEngine
{
  public:
    using Done = std::function<void(ScanResult)>;

    TableScanEngine(sim::Simulator &sim, flash::FlashServer &server)
        : sim_(sim), server_(server)
    {
    }

    /**
     * Scan table @p handle (published in the server's ATU).
     *
     * @param handle     ATU handle of the table file
     * @param schema     record layout
     * @param row_count  number of records in the table
     * @param page_size  flash page size backing the table
     * @param predicates conjunction to evaluate per record
     * @param done       result callback (rows in table order)
     */
    void scan(std::uint32_t handle, const RecordSchema &schema,
              std::uint64_t row_count, std::uint32_t page_size,
              std::vector<Predicate> predicates, Done done);

  private:
    sim::Simulator &sim_;
    flash::FlashServer &server_;
};

} // namespace isp
} // namespace bluedbm

#endif // BLUEDBM_ISP_TABLE_SCAN_HH
