#include "isp/table_scan.hh"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace isp {

using flash::PageBuffer;
using flash::Status;

RecordSchema::RecordSchema(std::vector<std::uint32_t> widths)
    : widths_(std::move(widths))
{
    if (widths_.empty())
        sim::fatal("schema needs at least one column");
    for (auto w : widths_) {
        if (w == 0 || w > 8)
            sim::fatal("column width %u out of range 1..8", w);
        offsets_.push_back(recordBytes_);
        recordBytes_ += w;
    }
}

std::uint64_t
RecordSchema::extract(const std::uint8_t *record,
                      std::uint32_t c) const
{
    std::uint64_t v = 0;
    std::memcpy(&v, record + offset(c), width(c));
    return v;
}

void
RecordSchema::store(std::uint8_t *record, std::uint32_t c,
                    std::uint64_t value) const
{
    std::memcpy(record + offset(c), &value, width(c));
}

bool
Predicate::matches(std::uint64_t v) const
{
    switch (op) {
      case CmpOp::Eq: return v == value;
      case CmpOp::Ne: return v != value;
      case CmpOp::Lt: return v < value;
      case CmpOp::Le: return v <= value;
      case CmpOp::Gt: return v > value;
      case CmpOp::Ge: return v >= value;
    }
    sim::panic("bad comparison operator");
}

void
TableScanEngine::scan(std::uint32_t handle,
                      const RecordSchema &schema,
                      std::uint64_t row_count,
                      std::uint32_t page_size,
                      std::vector<Predicate> predicates, Done done)
{
    const auto *pages = server_.handlePages(handle);
    if (!pages)
        sim::fatal("scan on unpublished handle %u", handle);
    std::uint32_t per_page = schema.recordsPerPage(page_size);
    if (per_page == 0)
        sim::fatal("record (%u bytes) larger than a page",
                   schema.recordBytes());
    std::uint64_t need_pages =
        (row_count + per_page - 1) / per_page;
    if (need_pages > pages->size())
        sim::fatal("table of %llu rows needs %llu pages, handle "
                   "has %zu",
                   static_cast<unsigned long long>(row_count),
                   static_cast<unsigned long long>(need_pages),
                   pages->size());

    struct Seg
    {
        std::vector<std::uint64_t> rows;
        std::vector<std::uint8_t> records;
        std::uint64_t nextRow = 0;
        std::uint64_t scanned = 0;
        std::uint64_t bytes = 0;
    };
    struct Shared
    {
        RecordSchema schema;
        std::vector<Predicate> preds;
        std::vector<Seg> segs;
        unsigned remaining = 0;
        Done done;

        Shared(const RecordSchema &s, std::vector<Predicate> p)
            : schema(s), preds(std::move(p))
        {
        }
    };
    auto shared = std::make_shared<Shared>(schema,
                                           std::move(predicates));
    shared->done = std::move(done);

    unsigned ifcs = server_.interfaces();
    std::uint64_t pages_per_seg = (need_pages + ifcs - 1) / ifcs;
    shared->segs.resize(ifcs);

    unsigned launched = 0;
    for (unsigned ifc = 0; ifc < ifcs; ++ifc) {
        std::uint64_t first = std::uint64_t(ifc) * pages_per_seg;
        if (first >= need_pages)
            break;
        std::uint64_t count =
            std::min(pages_per_seg, need_pages - first);
        ++launched;
        ++shared->remaining;

        Seg &seg = shared->segs[ifc];
        seg.nextRow = first * per_page;
        auto pages_seen = std::make_shared<std::uint64_t>(0);
        server_.streamRead(
            ifc, handle, first, count,
            [this, shared, ifc, per_page, row_count, count,
             pages_seen](PageBuffer page, Status st) {
            if (st == Status::Uncorrectable)
                sim::warn("uncorrectable page during scan");
            Seg &s = shared->segs[ifc];
            const RecordSchema &sc = shared->schema;
            for (std::uint32_t r = 0;
                 r < per_page && s.nextRow < row_count;
                 ++r, ++s.nextRow) {
                const std::uint8_t *rec =
                    page.data() + std::size_t(r) * sc.recordBytes();
                ++s.scanned;
                s.bytes += sc.recordBytes();
                bool ok = true;
                for (const auto &p : shared->preds)
                    ok = ok && p.matches(sc.extract(rec, p.column));
                if (ok) {
                    s.rows.push_back(s.nextRow);
                    s.records.insert(s.records.end(), rec,
                                     rec + sc.recordBytes());
                }
            }
            if (++*pages_seen == count) {
                if (--shared->remaining == 0) {
                    // Merge segments in table order.
                    ScanResult out;
                    for (auto &sg : shared->segs) {
                        out.rows.insert(out.rows.end(),
                                        sg.rows.begin(),
                                        sg.rows.end());
                        out.records.insert(out.records.end(),
                                           sg.records.begin(),
                                           sg.records.end());
                        out.rowsScanned += sg.scanned;
                        out.bytesScanned += sg.bytes;
                    }
                    shared->done(std::move(out));
                }
            }
        });
    }
    if (launched == 0) {
        sim_.scheduleAfter(0, [shared]() {
            shared->done(ScanResult{});
        });
    }
}

} // namespace isp
} // namespace bluedbm
