#!/usr/bin/env python3
"""Self-tests for bluedbm_lint.py.

Runs the linter against the fixture corpus in tools/lint/fixtures/
plus synthetic trees built in a temp directory, proving both
directions of the CI gate: known-good code passes, each rule catches
its known-bad fixture, the suppression syntax works, and the
baseline mechanism ratchets (exceed fails, improvement-without-
update fails, update locks the win in).

Registered under ctest as `test_lint`; stdlib-only.
"""

import contextlib
import io
import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bluedbm_lint  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")


def run_lint(argv):
    """Invoke the linter in-process; returns (exit_code, output)."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out), \
            contextlib.redirect_stderr(out):
        code = bluedbm_lint.main(argv)
    return code, out.getvalue()


class TempTree:
    """A throwaway repo root the linter can run against."""

    def __init__(self):
        self.root = tempfile.mkdtemp(prefix="bluedbm_lint_test_")

    def write(self, relpath, text):
        full = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "w", encoding="utf-8") as f:
            f.write(text)
        return full

    def copy_fixture(self, name, relpath):
        return self.write(relpath, open(
            os.path.join(FIXTURES, name), encoding="utf-8").read())

    def lint(self, *extra):
        return run_lint(["--root", self.root, "--baseline", "none",
                         os.path.join(self.root, "src")] + list(extra))

    def cleanup(self):
        shutil.rmtree(self.root, ignore_errors=True)


GOOD_HEADER = """\
#ifndef BLUEDBM_FS_GOOD_API_HH
#define BLUEDBM_FS_GOOD_API_HH

#include <cstdint>

namespace bluedbm {

class GoodApi
{
  public:
    [[nodiscard]] bool exists(std::uint32_t id) const;
    void touch(std::uint32_t id);
};

} // namespace bluedbm

#endif // BLUEDBM_FS_GOOD_API_HH
"""


class RuleTests(unittest.TestCase):
    def setUp(self):
        self.tree = TempTree()
        self.addCleanup(self.tree.cleanup)

    def findings(self, output, rule):
        return [ln for ln in output.splitlines()
                if ("[%s]" % rule) in ln]

    # -- determinism --------------------------------------------------

    def test_determinism_bad_fixture_fails(self):
        self.tree.copy_fixture("bad_determinism.cc",
                               "src/det_bad.cc")
        code, out = self.tree.lint()
        self.assertEqual(code, 1, out)
        hits = self.findings(out, "determinism")
        self.assertGreaterEqual(len(hits), 6, out)
        for token in ("random_device", "rand()", "time()",
                      "mt19937"):
            self.assertTrue(any(token in h for h in hits),
                            "no finding mentions %s:\n%s"
                            % (token, out))

    def test_determinism_good_fixture_passes(self):
        self.tree.copy_fixture("good_determinism.cc",
                               "src/det_good.cc")
        code, out = self.tree.lint()
        self.assertEqual(code, 0, out)

    # -- hot-path allocation ------------------------------------------

    def test_hot_path_bad_fixture_fails(self):
        self.tree.copy_fixture("bad_hot_path.cc", "src/hot_bad.cc")
        code, out = self.tree.lint()
        self.assertEqual(code, 1, out)
        hits = self.findings(out, "hot-path-alloc")
        self.assertGreaterEqual(len(hits), 6, out)
        for token in ("std::function", "std::any",
                      "shared ownership", "make_unique", "new"):
            self.assertTrue(any(token in h for h in hits),
                            "no finding mentions %s:\n%s"
                            % (token, out))

    def test_hot_path_good_fixture_passes(self):
        # Placement new is allowed; the heap fallback carries a
        # written allow() and counts as suppressed, not as a finding.
        self.tree.copy_fixture("good_hot_path.cc", "src/hot_good.cc")
        code, out = self.tree.lint()
        self.assertEqual(code, 0, out)
        self.assertIn("1 suppressed inline", out)

    def test_unmarked_file_not_held_to_hot_path_rule(self):
        self.tree.write("src/cold.cc",
                        "#include <memory>\n"
                        "auto p = std::make_shared<int>(1);\n")
        code, out = self.tree.lint()
        self.assertEqual(code, 0, out)

    # -- std::function ratchet ----------------------------------------

    def test_std_function_flagged_outside_hot_path(self):
        self.tree.write("src/cb.cc",
                        "#include <functional>\n"
                        "std::function<void()> f;\n")
        code, out = self.tree.lint()
        self.assertEqual(code, 1, out)
        self.assertTrue(self.findings(out, "std-function"), out)

    # -- nodiscard-status ---------------------------------------------

    def test_nodiscard_missing_on_status_surface_fails(self):
        self.tree.write(
            "src/fs/bad_api.hh",
            "#ifndef BLUEDBM_FS_BAD_API_HH\n"
            "#define BLUEDBM_FS_BAD_API_HH\n"
            "class BadApi\n{\n  public:\n"
            "    bool exists(unsigned id) const;\n"
            "};\n"
            "#endif // BLUEDBM_FS_BAD_API_HH\n")
        code, out = self.tree.lint()
        self.assertEqual(code, 1, out)
        self.assertTrue(self.findings(out, "nodiscard-status"), out)

    def test_nodiscard_annotated_surface_passes(self):
        self.tree.write("src/fs/good_api.hh", GOOD_HEADER)
        code, out = self.tree.lint()
        self.assertEqual(code, 0, out)

    # -- include hygiene ----------------------------------------------

    def test_missing_guard_fails(self):
        self.tree.write("src/net/raw.hh", "struct Raw {};\n")
        code, out = self.tree.lint()
        self.assertEqual(code, 1, out)
        self.assertTrue(
            any("include guard" in h for h in
                self.findings(out, "include-hygiene")), out)

    def test_wrong_guard_name_fails(self):
        self.tree.write("src/net/raw.hh",
                        "#ifndef SOME_OTHER_GUARD\n"
                        "#define SOME_OTHER_GUARD\n"
                        "struct Raw {};\n"
                        "#endif\n")
        code, out = self.tree.lint()
        self.assertEqual(code, 1, out)
        self.assertTrue(
            any("convention" in h for h in
                self.findings(out, "include-hygiene")), out)

    def test_banned_thread_include_fails_everywhere(self):
        self.tree.write("src/sched.cc",
                        "#include <thread>\n"
                        "void f() {}\n")
        code, out = self.tree.lint()
        self.assertEqual(code, 1, out)
        self.assertTrue(
            any("<thread>" in h for h in
                self.findings(out, "include-hygiene")), out)

    def test_iostream_banned_in_headers_only(self):
        self.tree.write("src/log/print.hh",
                        "#ifndef BLUEDBM_LOG_PRINT_HH\n"
                        "#define BLUEDBM_LOG_PRINT_HH\n"
                        "#include <iostream>\n"
                        "#endif // BLUEDBM_LOG_PRINT_HH\n")
        self.tree.write("src/log/print.cc",
                        "#include <iostream>\n"
                        "void emit() { std::cout << 1; }\n")
        code, out = self.tree.lint()
        self.assertEqual(code, 1, out)
        hits = self.findings(out, "include-hygiene")
        self.assertEqual(len(hits), 1, out)
        self.assertIn("print.hh", hits[0])

    # -- comment/string stripping -------------------------------------

    def test_tokens_in_comments_and_strings_ignored(self):
        self.tree.write(
            "src/doc.cc",
            '// rand() and std::function in a comment\n'
            '/* time(nullptr); std::make_shared<int>() */\n'
            'const char *s = "rand() time() std::function";\n'
            'const char *r = R"(std::random_device rd;)";\n')
        code, out = self.tree.lint()
        self.assertEqual(code, 0, out)

    # -- suppression syntax -------------------------------------------

    def test_reasonless_allow_is_itself_a_finding(self):
        self.tree.write("src/sloppy.cc",
                        "// lint: allow(determinism)\n"
                        "int x = rand();\n")
        code, out = self.tree.lint()
        self.assertEqual(code, 1, out)
        self.assertTrue(self.findings(out, "bad-suppression"), out)

    def test_allow_only_covers_named_rule(self):
        self.tree.write(
            "src/partial.cc",
            "// lint: allow(determinism) fixture reason\n"
            "int x = rand();\n"
            "int y = rand();\n")
        code, out = self.tree.lint()
        # Line 2 suppressed; line 3 still fails.
        self.assertEqual(code, 1, out)
        hits = self.findings(out, "determinism")
        self.assertEqual(len(hits), 1, out)
        self.assertIn(":3:", hits[0])

    def test_end_of_line_allow_covers_own_line(self):
        self.tree.write(
            "src/eol.cc",
            "int x = rand(); "
            "// lint: allow(determinism) fixture reason\n")
        code, out = self.tree.lint()
        self.assertEqual(code, 0, out)


class BaselineTests(unittest.TestCase):
    """The ratchet: exceed fails, improve-without-update fails,
    update locks the win in."""

    def setUp(self):
        self.tree = TempTree()
        self.addCleanup(self.tree.cleanup)
        self.baseline = os.path.join(self.tree.root, "baseline.txt")
        self.legacy = self.tree.write(
            "src/legacy.cc",
            "#include <functional>\n"
            "std::function<void()> a;\n"
            "std::function<void()> b;\n")

    def lint(self, *extra):
        return run_lint(["--root", self.tree.root,
                         "--baseline", self.baseline,
                         os.path.join(self.tree.root, "src")]
                        + list(extra))

    def test_grandfathered_findings_pass(self):
        code, out = self.lint("--update-baseline")
        self.assertEqual(code, 0, out)
        code, out = self.lint()
        self.assertEqual(code, 0, out)
        self.assertIn("2 grandfathered", out)

    def test_new_violation_fails_against_baseline(self):
        self.lint("--update-baseline")
        with open(self.legacy, "a", encoding="utf-8") as f:
            f.write("std::function<void()> c;\n")
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertIn("exceed the baselined", out)

    def test_new_rule_violation_fails_against_baseline(self):
        # The CI direction the issue demands: an injected rand() in
        # src/ must fail even though other findings are baselined.
        self.lint("--update-baseline")
        self.tree.write("src/fresh.cc", "int x = rand();\n")
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertTrue(
            any("[determinism]" in ln for ln in out.splitlines()),
            out)

    def test_injected_std_function_in_hot_path_file_fails(self):
        self.lint("--update-baseline")
        self.tree.write("src/hot.cc",
                        "// lint: hot-path\n"
                        "#include <functional>\n"
                        "std::function<void()> cb;\n")
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertTrue(
            any("[hot-path-alloc]" in ln for ln in out.splitlines()),
            out)

    def test_stale_baseline_fails_until_updated(self):
        self.lint("--update-baseline")
        self.tree.write("src/legacy.cc",
                        "#include <functional>\n"
                        "std::function<void()> a;\n")
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertIn("baseline is stale", out)
        code, out = self.lint("--update-baseline")
        self.assertEqual(code, 0, out)
        code, out = self.lint()
        self.assertEqual(code, 0, out)


class RepoTests(unittest.TestCase):
    """The real tree must be clean against the checked-in baseline."""

    def test_repo_lints_clean(self):
        code, out = run_lint([])
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main(verbosity=2)
