// Fixture: deterministic code that must produce no findings.
// Mentions of banned names in comments (rand(), std::random_device,
// system_clock) and strings must be ignored by the stripper.
#include <cstdint>

struct Rng
{
    std::uint64_t s = 1;
    std::uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
};

const char *kMsg = "do not call rand() or time() here";

std::uint64_t
goodEntropy(Rng &rng)
{
    // A seeded generator drawn at simulated time() -- the tokens in
    // this comment must not count.
    return rng.next();
}
