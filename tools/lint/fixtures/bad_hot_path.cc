// lint: hot-path
// Fixture: allocation / type-erasure tokens that must all trip
// hot-path-alloc in a marked file.
#include <any>
#include <cstdint>
#include <functional>
#include <memory>

struct Big
{
    std::uint64_t v[16];
};

void
badHotPath()
{
    std::function<void()> f = []() {};
    f();
    std::any a = 1;
    (void)a;
    auto sp = std::make_shared<Big>();
    (void)sp;
    std::shared_ptr<Big> sp2;
    (void)sp2;
    auto up = std::make_unique<Big>();
    (void)up;
    Big *raw = new Big();
    delete raw;
}
