// Fixture: every line here must trip the determinism rule.
#include <random>

unsigned long
badEntropy()
{
    std::random_device rd;
    unsigned long x = rd();
    x ^= (unsigned long)rand();
    auto t = std::chrono::steady_clock::now();
    (void)t;
    auto w = std::chrono::system_clock::now();
    (void)w;
    x ^= (unsigned long)time(nullptr);
    std::mt19937_64 gen(x);
    std::uniform_int_distribution<unsigned long> dist(0, 100);
    return dist(gen);
}
