// lint: hot-path
// Fixture: a marked file whose allocations are all allowed forms --
// placement new, plus a justified fallback suppression.
#include <cstdint>
#include <new>

struct Slot
{
    alignas(8) unsigned char buf[64];
};

struct Node
{
    std::uint64_t v = 0;
};

Node *
goodHotPath(Slot &s, bool oversized)
{
    // Placement new targets pooled storage: allowed.
    Node *n = ::new (static_cast<void *>(s.buf)) Node();
    if (oversized) {
        // lint: allow(hot-path-alloc) documented fallback for the
        // oversized case, mirroring InlineFunction's heap path
        return new Node();
    }
    return n;
}
