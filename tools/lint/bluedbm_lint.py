#!/usr/bin/env python3
"""bluedbm-lint: project-specific static analysis for the BlueDBM tree.

The repository's published numbers (bit-identical fig12/fig13
reproductions, the serving-throughput trajectory, exact span-sum
telescoping) rest on invariants that no general-purpose tool checks:

  * the simulation is deterministic -- one simulated clock, sim::Rng
    as the sole entropy source, no wall-clock or libc entropy anywhere
    in src/;
  * the event hot path is allocation-free -- files marked
    `// lint: hot-path` must not name std::function, std::any,
    std::shared_ptr, or unpooled new/make_unique;
  * status-returning APIs on the kv/fs/flash surface carry
    [[nodiscard]] so an ignored failure is a compile error, not a
    latent durability bug;
  * headers are hygienic: conventional include guards, no entropy /
    threading / iostream transitive includes.

The environment has no clang-tidy or cppcheck, so this analyzer is
deliberately self-contained: Python stdlib only, no compilation.  It
strips comments / string literals / raw strings properly, then applies
token-level rules to what remains, so banned names in prose or test
strings never fire.

Suppressions are inline and must carry a reason:

    // lint: allow(rule-a, rule-b) reason why this use is sound

placed on the offending line or alone on the line directly above it.
A reasonless allow() is itself a finding.

Grandfathered findings live in a checked-in baseline (default
tools/lint/baseline.txt) holding per-(rule, file) counts.  The
baseline is a ratchet: going above a count fails the build, and going
BELOW it also fails until `--update-baseline` shrinks the file, so
improvements are locked in as soon as they land.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------
# Source preparation
# --------------------------------------------------------------------

_RAW_STRING_RE = re.compile(r'R"([^()\\ \t\n]{0,16})\(')


def strip_code(text):
    """Blank out comments, string literals (incl. raw strings) and
    char literals, preserving every newline and column offset so the
    rule layer reports true line numbers.  Returns the stripped text.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            # Line comment: blank to end of line.
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            seg = text[i:j]
            out.append("".join("\n" if ch == "\n" else " " for ch in seg))
            i = j
        elif c == "R" and nxt == '"':
            m = _RAW_STRING_RE.match(text, i)
            if not m:
                out.append(c)
                i += 1
                continue
            closer = ")" + m.group(1) + '"'
            j = text.find(closer, m.end())
            j = n if j == -1 else j + len(closer)
            seg = text[i:j]
            out.append("".join("\n" if ch == "\n" else " " for ch in seg))
            i = j
        elif c == '"' or c == "'":
            # Ordinary string / char literal with escapes.  Only treat
            # a single quote as a char literal when it plausibly opens
            # one (avoids eating digit separators like 1'000'000).
            if c == "'" and not _opens_char_literal(text, i):
                out.append(c)
                i += 1
                continue
            j = i + 1
            while j < n and text[j] != c:
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            seg = text[i:j]
            out.append("".join("\n" if ch == "\n" else " " for ch in seg))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _opens_char_literal(text, i):
    """A ' preceded by an alphanumeric is a digit separator (1'000)
    or part of an identifier-adjacent token, not a char literal."""
    return not (i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"))


# --------------------------------------------------------------------
# Inline directives (parsed from the RAW text: they are comments)
# --------------------------------------------------------------------

_DIRECTIVE_RE = re.compile(r"//\s*lint:\s*(.*)$")
_ALLOW_RE = re.compile(r"allow\(([^)]*)\)\s*(.*)$")


class Directives:
    def __init__(self):
        self.hot_path = False
        # line -> set of rule names allowed there (with a reason)
        self.allows = {}
        # findings produced while parsing (reasonless allow etc.)
        self.errors = []


def parse_directives(path, raw_text):
    d = Directives()
    lines = raw_text.splitlines()
    for lineno, line in enumerate(lines, 1):
        m = _DIRECTIVE_RE.search(line)
        if not m:
            continue
        body = m.group(1).strip()
        if body == "hot-path":
            d.hot_path = True
            continue
        am = _ALLOW_RE.match(body)
        if am:
            rules = {r.strip() for r in am.group(1).split(",") if r.strip()}
            reason = am.group(2).strip()
            if not rules or not reason:
                d.errors.append(Finding(
                    path, lineno, "bad-suppression",
                    "allow() needs rule name(s) and a written reason: "
                    "// lint: allow(rule) why this is sound"))
                continue
            # A standalone allow-comment covers the next CODE line
            # (the suppression comment may wrap over several `//`
            # lines, and blank lines are skipped too); an end-of-line
            # allow covers its own line.
            standalone = line.strip().startswith("//")
            if standalone:
                target = lineno + 1
                while target <= len(lines):
                    t = lines[target - 1].strip()
                    if t and not t.startswith("//"):
                        break
                    target += 1
            else:
                target = lineno
            d.allows.setdefault(target, set()).update(rules)
        else:
            d.errors.append(Finding(
                path, lineno, "bad-suppression",
                "unrecognized lint directive %r" % body))
    return d


# --------------------------------------------------------------------
# Findings
# --------------------------------------------------------------------

class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


# --------------------------------------------------------------------
# Rules.  Each takes (relpath, stripped_lines, directives) and yields
# Finding objects.  Preprocessor lines are only examined by the
# include rules; token rules skip them (so `#include <new>` never
# trips the allocation rule).
# --------------------------------------------------------------------

def _is_pp(line):
    return line.lstrip().startswith("#")


# ---- determinism -----------------------------------------------------

_DET_INCLUDE = re.compile(
    r'^\s*#\s*include\s*[<"](random|chrono|ctime|time\.h|sys/time\.h)[>"]')
_DET_STD = re.compile(
    r"\bstd\s*::\s*(rand|srand|random_device|mt19937(?:_64)?|"
    r"default_random_engine|minstd_rand0?|knuth_b|ranlux\w+|"
    r"(?:uniform_int|uniform_real|normal|bernoulli|poisson|exponential|"
    r"geometric|binomial|discrete|piecewise\w*)_distribution|"
    r"(?:system|steady|high_resolution)_clock|chrono)\b")
_DET_LIBC_CALL = re.compile(
    r"(?<![\w:.>])(rand|srand|drand48|lrand48|mrand48|random|"
    r"time|clock|gettimeofday|clock_gettime|timespec_get|"
    r"localtime|gmtime|mktime)\s*\(")
_DET_CLOCK = re.compile(
    r"(?<![\w:])(system_clock|steady_clock|high_resolution_clock)\b")


def rule_determinism(path, lines, directives):
    for i, line in enumerate(lines, 1):
        if _is_pp(line):
            m = _DET_INCLUDE.match(line)
            if m:
                yield Finding(
                    path, i, "determinism",
                    "entropy/clock header <%s>: the simulation's only "
                    "clock is sim::Simulator::now() and its only "
                    "entropy source is sim::Rng" % m.group(1))
            continue
        for rx, what in ((_DET_STD, "std::%s"),
                         (_DET_LIBC_CALL, "%s()"),
                         (_DET_CLOCK, "%s")):
            for m in rx.finditer(line):
                yield Finding(
                    path, i, "determinism",
                    (what % m.group(1)) + " is nondeterministic across "
                    "runs/platforms; draw from sim::Rng / "
                    "sim::Simulator::now() instead")


# ---- hot-path allocation discipline ---------------------------------

_HOT_BANNED = [
    (re.compile(r"\bstd\s*::\s*function\b"), "std::function",
     "type-erased callables heap-allocate their captures; use "
     "sim::InlineFunction"),
    (re.compile(r"\bstd\s*::\s*any\b"), "std::any",
     "type erasure allocates; use a pooled PayloadRef or a concrete "
     "type"),
    (re.compile(r"\b(?:std\s*::\s*)?(shared_ptr|make_shared)\b"),
     "shared ownership",
     "control-block allocation plus atomic refcounts on the event "
     "path; move the state through the continuation chain instead"),
    (re.compile(r"\b(?:std\s*::\s*)?make_unique\b"), "make_unique",
     "unpooled allocation on the hot path"),
    (re.compile(r"\bnew\b(?!\s*\()"), "new",
     "unpooled allocation on the hot path (placement `new (addr)` "
     "is allowed)"),
]


def rule_hot_path_alloc(path, lines, directives):
    if not directives.hot_path:
        return
    for i, line in enumerate(lines, 1):
        if _is_pp(line):
            continue
        for rx, what, why in _HOT_BANNED:
            if rx.search(line):
                yield Finding(path, i, "hot-path-alloc",
                              "%s in a hot-path file: %s" % (what, why))


# ---- std::function ratchet (non-hot-path files, baselined) ----------

_STD_FUNCTION = re.compile(r"\bstd\s*::\s*function\b")


def rule_std_function(path, lines, directives):
    if directives.hot_path:
        return  # governed by the hard hot-path-alloc rule
    for i, line in enumerate(lines, 1):
        if _is_pp(line):
            continue
        if _STD_FUNCTION.search(line):
            yield Finding(
                path, i, "std-function",
                "std::function heap-allocates most captures; new code "
                "should take sim::InlineFunction (existing uses are "
                "grandfathered in tools/lint/baseline.txt)")


# ---- [[nodiscard]] on the kv/fs/flash status surface ----------------

_NODISCARD_SURFACE = ("src/kv/", "src/fs/", "src/flash/")
_DECL_ONE_LINE = re.compile(
    r"^\s*(?:(?:static|virtual|constexpr|inline|explicit|friend)\s+)*"
    r"(Status|KvStatus|bool)\s+([A-Za-z_]\w*)\s*\(")
_DECL_TYPE_ALONE = re.compile(
    r"^\s*(?:(?:static|virtual|constexpr|inline)\s+)*"
    r"(Status|KvStatus|bool)\s*$")
_DECL_NAME_LINE = re.compile(r"^\s*([A-Za-z_]\w*)\s*\(")


def rule_nodiscard_status(path, lines, directives):
    if not path.endswith(".hh"):
        return
    if not any(path.startswith(p) for p in _NODISCARD_SURFACE):
        return

    def has_nodiscard(idx):  # idx is 0-based line of the return type
        window = lines[max(0, idx - 2):idx + 1]
        return any("[[nodiscard]]" in w for w in window)

    for i, line in enumerate(lines):
        if _is_pp(line) or "using " in line:
            continue
        m = _DECL_ONE_LINE.match(line)
        name = None
        if m:
            name = m.group(2)
            typ = m.group(1)
        else:
            t = _DECL_TYPE_ALONE.match(line)
            if t and i + 1 < len(lines):
                nm = _DECL_NAME_LINE.match(lines[i + 1])
                if nm:
                    name = nm.group(1)
                    typ = t.group(1)
        if name is None or name == "operator":
            continue
        if has_nodiscard(i):
            continue
        yield Finding(
            path, i + 1, "nodiscard-status",
            "%s-returning API %s() on the kv/fs/flash surface must be "
            "[[nodiscard]]: an ignored failure here is a silent "
            "durability/consistency bug" % (typ, name))


# ---- include hygiene ------------------------------------------------

_GUARD_IFNDEF = re.compile(r"^\s*#\s*ifndef\s+(\w+)", re.M)
_GUARD_DEFINE = re.compile(r"^\s*#\s*define\s+(\w+)", re.M)

_BANNED_INCLUDES = {
    "thread": "the simulator is single-threaded by construction",
    "mutex": "the simulator is single-threaded by construction",
    "shared_mutex": "the simulator is single-threaded by construction",
    "condition_variable":
        "the simulator is single-threaded by construction",
    "future": "the simulator is single-threaded by construction",
    "stop_token": "the simulator is single-threaded by construction",
}
_BANNED_HEADER_ONLY = {
    "iostream": "global stream objects drag in static-init order and "
                "buffering state; headers must stay iostream-free "
                "(use sim/logging.hh)",
}
_INCLUDE_RE = re.compile(r"^\s*#\s*include\s*<([^>]+)>")


def expected_guard(relpath):
    """src/net/link.hh -> BLUEDBM_NET_LINK_HH (repo convention)."""
    stem = relpath
    if stem.startswith("src/"):
        stem = stem[len("src/"):]
    stem = re.sub(r"\.hh$", "", stem)
    return "BLUEDBM_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_HH"


def rule_include_hygiene(path, lines, directives):
    is_header = path.endswith(".hh")
    text = "\n".join(lines)
    if is_header:
        if "#pragma once" not in text:
            gi = _GUARD_IFNDEF.search(text)
            gd = _GUARD_DEFINE.search(text)
            if not (gi and gd and gi.group(1) == gd.group(1)):
                yield Finding(path, 1, "include-hygiene",
                              "header lacks an include guard "
                              "(#ifndef/#define pair or #pragma once)")
            elif gi.group(1) != expected_guard(path):
                yield Finding(
                    path, 1, "include-hygiene",
                    "guard %s does not follow the BLUEDBM_<PATH>_HH "
                    "convention (expected %s)"
                    % (gi.group(1), expected_guard(path)))
    for i, line in enumerate(lines, 1):
        m = _INCLUDE_RE.match(line)
        if not m:
            continue
        inc = m.group(1)
        if inc in _BANNED_INCLUDES:
            yield Finding(path, i, "include-hygiene",
                          "banned include <%s>: %s"
                          % (inc, _BANNED_INCLUDES[inc]))
        elif is_header and inc in _BANNED_HEADER_ONLY:
            yield Finding(path, i, "include-hygiene",
                          "banned transitive include <%s>: %s"
                          % (inc, _BANNED_HEADER_ONLY[inc]))


RULES = [
    rule_determinism,
    rule_hot_path_alloc,
    rule_std_function,
    rule_nodiscard_status,
    rule_include_hygiene,
]

RULE_NAMES = ("determinism", "hot-path-alloc", "std-function",
              "nodiscard-status", "include-hygiene", "bad-suppression")


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def lint_file(root, relpath):
    """Lint one file; returns (findings, suppressed_count)."""
    full = os.path.join(root, relpath)
    try:
        with open(full, "r", encoding="utf-8") as f:
            raw = f.read()
    except OSError as e:
        return [Finding(relpath, 0, "io", str(e))], 0

    directives = parse_directives(relpath, raw)
    stripped = strip_code(raw)
    lines = stripped.split("\n")

    findings = list(directives.errors)
    for rule in RULES:
        findings.extend(rule(relpath, lines, directives))

    kept, suppressed = [], 0
    for f in findings:
        if f.rule in directives.allows.get(f.line, ()):
            suppressed += 1
        else:
            kept.append(f)
    return kept, suppressed


SOURCE_EXTS = (".cc", ".hh")


def discover(root):
    files = []
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, "src")):
        for fn in sorted(filenames):
            if fn.endswith(SOURCE_EXTS):
                files.append(os.path.relpath(os.path.join(dirpath, fn),
                                             root))
    return sorted(files)


def load_baseline(path):
    """Baseline file: lines of `rule<TAB>relpath<TAB>count`."""
    base = {}
    if not os.path.exists(path):
        return base
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 3 or not parts[2].isdigit():
                raise ValueError("%s:%d: malformed baseline line %r"
                                 % (path, lineno, line))
            base[(parts[0], parts[1])] = int(parts[2])
    return base


def write_baseline(path, counts):
    with open(path, "w", encoding="utf-8") as f:
        f.write("# bluedbm-lint baseline: grandfathered findings as\n"
                "# rule<TAB>file<TAB>count.  This file only shrinks:\n"
                "# exceeding a count fails CI, and dropping below one\n"
                "# fails too until --update-baseline records the win.\n")
        for (rule, rel), n in sorted(counts.items()):
            f.write("%s\t%s\t%d\n" % (rule, rel, n))


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="files or directories to lint (default: "
                         "all of src/)")
    ap.add_argument("--root", default=None,
                    help="repository root (default: two levels above "
                         "this script)")
    ap.add_argument("--baseline", default=None,
                    help="baseline file (default: tools/lint/"
                         "baseline.txt under the root); 'none' "
                         "disables the baseline entirely")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline to the current "
                         "finding counts")
    args = ap.parse_args(argv)

    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    if args.baseline == "none":
        baseline_path = None
    else:
        baseline_path = args.baseline or os.path.join(
            root, "tools", "lint", "baseline.txt")

    if args.paths:
        files = []
        for p in args.paths:
            ap_ = os.path.abspath(p)
            if os.path.isdir(ap_):
                for dirpath, _, names in sorted(os.walk(ap_)):
                    for n in sorted(names):
                        if n.endswith(SOURCE_EXTS):
                            files.append(os.path.relpath(
                                os.path.join(dirpath, n), root))
            else:
                files.append(os.path.relpath(ap_, root))
    else:
        files = discover(root)
    if not files:
        print("bluedbm-lint: nothing to lint under %s" % root,
              file=sys.stderr)
        return 2

    all_findings = []
    suppressed_total = 0
    for rel in files:
        kept, suppressed = lint_file(root, rel)
        all_findings.extend(kept)
        suppressed_total += suppressed

    counts = {}
    for f in all_findings:
        counts[(f.rule, f.path)] = counts.get((f.rule, f.path), 0) + 1

    if args.update_baseline:
        if baseline_path is None:
            print("--update-baseline needs a baseline file",
                  file=sys.stderr)
            return 2
        write_baseline(baseline_path, counts)
        print("bluedbm-lint: baseline updated (%d grandfathered "
              "findings across %d (rule, file) pairs)"
              % (sum(counts.values()), len(counts)))
        return 0

    try:
        baseline = (load_baseline(baseline_path)
                    if baseline_path else {})
    except ValueError as e:
        print("bluedbm-lint: %s" % e, file=sys.stderr)
        return 2

    failed = False
    grandfathered = 0
    # New findings: anything beyond the baselined count for its
    # (rule, file) cell.  Report the LAST n findings of an exceeded
    # cell (the newest lines are likelier culprits, but all are shown
    # if the cell is brand new).
    for key in sorted(set(counts) | set(baseline)):
        have = counts.get(key, 0)
        allowed = baseline.get(key, 0)
        if have > allowed:
            failed = True
            cell = [f for f in all_findings
                    if (f.rule, f.path) == key]
            for f in cell[allowed:]:
                print(f)
            if allowed:
                print("%s: [%s] %d finding(s) exceed the baselined %d"
                      % (key[1], key[0], have, allowed))
        elif have < allowed:
            failed = True
            print("%s: [%s] baseline is stale (%d baselined, %d "
                  "remain) -- lock the improvement in with "
                  "--update-baseline" % (key[1], key[0], allowed, have))
            grandfathered += have
        else:
            grandfathered += have

    if failed:
        print("bluedbm-lint: FAILED (%d findings, %d grandfathered, "
              "%d suppressed inline)"
              % (sum(counts.values()), grandfathered, suppressed_total),
              file=sys.stderr)
        return 1
    print("bluedbm-lint: OK -- %d files, %d grandfathered finding(s), "
          "%d suppressed inline"
          % (len(files), grandfathered, suppressed_total))
    return 0


if __name__ == "__main__":
    sys.exit(main())
