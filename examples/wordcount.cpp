/**
 * @file
 * BlueDBM-style MapReduce word count -- the "BlueDBM-Optimized
 * MapReduce" the paper lists as planned work (section 8).
 *
 * Map runs in store: every node's ISP streams its local shard at
 * flash bandwidth and emits per-word counts (tiny compared to the
 * input). Reduce merges those counts on one host. Only the
 * aggregates ever cross PCIe -- the MapReduce dataflow reshaped for
 * in-store processing.
 *
 * Run:  ./wordcount
 */

#include <cstdio>
#include <map>
#include <string>

#include "sim/random.hh"
#include "core/cluster.hh"
#include "sim/simulator.hh"
#include "sim/logging.hh"

using namespace bluedbm;

namespace {

/** Streaming word splitter over page boundaries. */
struct WordCounter
{
    std::map<std::string, std::uint64_t> counts;
    std::string current;

    void
    feed(const std::uint8_t *data, std::size_t len)
    {
        for (std::size_t i = 0; i < len; ++i) {
            char c = char(data[i]);
            if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
                current.push_back(c);
            } else if (!current.empty()) {
                ++counts[current];
                current.clear();
            }
        }
    }

    void
    finish()
    {
        if (!current.empty()) {
            ++counts[current];
            current.clear();
        }
    }
};

} // namespace

int
main()
{
    sim::Simulator sim;
    core::ClusterParams params;
    params.topology = net::Topology::ring(4, 2);
    params.node.geometry = flash::Geometry::tiny();
    params.node.timing = flash::Timing::fast();
    core::Cluster cluster(sim, params);

    // --- 1. Each node holds a shard of the corpus in its FS. Text
    //        is drawn from a fixed vocabulary so the reduce output
    //        (distinct-word counts) is small, as in real corpora.
    std::uint64_t shard_bytes = 96 * 1024;
    std::vector<std::string> vocabulary;
    {
        sim::Rng vr(42);
        for (int w = 0; w < 300; ++w) {
            std::string word;
            auto len = 3 + vr.below(7);
            for (std::uint64_t i = 0; i < len; ++i)
                word.push_back(char('a' + vr.below(26)));
            vocabulary.push_back(word);
        }
    }
    std::map<std::string, std::uint64_t> expected;
    for (unsigned n = 0; n < cluster.size(); ++n) {
        sim::Rng rng(100 + n);
        std::vector<std::uint8_t> text;
        while (text.size() < shard_bytes) {
            const std::string &w =
                vocabulary[rng.below(vocabulary.size())];
            text.insert(text.end(), w.begin(), w.end());
            text.push_back(' ');
        }
        text.resize(shard_bytes);
        // Ground truth for verification.
        WordCounter ref;
        ref.feed(text.data(), text.size());
        ref.finish();
        for (const auto &[w, c] : ref.counts)
            expected[w] += c;

        auto &node = cluster.node(n);
        if (!node.fs().create("shard"))
            sim::fatal("create(shard) failed");
        node.fs().append("shard", text, [](bool) {});
        sim.run();
        node.ispServer(0).defineHandle(
            9, node.fs().physicalAddresses("shard"));
    }
    std::printf("corpus: %u shards x %llu bytes\n", cluster.size(),
                (unsigned long long)shard_bytes);

    // --- 2. MAP, in store: every node streams its shard locally
    //        and reduces it to word counts (runs concurrently on
    //        all nodes in simulated time).
    std::vector<WordCounter> mappers(cluster.size());
    sim::Tick start = sim.now();
    for (unsigned n = 0; n < cluster.size(); ++n) {
        auto &node = cluster.node(n);
        std::uint64_t pages =
            node.fs().physicalAddresses("shard").size();
        node.ispServer(0).streamRead(
            0, 9, 0, pages,
            [&mappers, n](flash::PageBuffer data, flash::Status) {
            mappers[n].feed(data.data(), data.size());
        });
    }
    sim.run();
    double map_us = sim::ticksToUs(sim.now() - start);

    // --- 3. REDUCE on host 0: merge the per-node aggregates (the
    //        only data that crosses PCIe).
    std::map<std::string, std::uint64_t> merged;
    std::uint64_t result_bytes = 0;
    for (auto &m : mappers) {
        m.finish();
        for (const auto &[w, c] : m.counts) {
            merged[w] += c;
            result_bytes += w.size() + 8;
        }
    }

    // The trailing page padding introduces one spurious token of
    // NUL-adjacent letters at shard tails; strip empty-ish noise by
    // comparing only ground-truth words.
    std::uint64_t checked = 0, wrong = 0;
    for (const auto &[w, c] : expected) {
        ++checked;
        if (merged[w] < c)
            ++wrong;
    }

    std::printf("map streamed %.0f KB in %.0f us; reduce merged "
                "%zu distinct words (%llu bytes crossed PCIe vs "
                "%llu input)\n",
                double(shard_bytes) * cluster.size() / 1024.0,
                map_us, merged.size(),
                (unsigned long long)result_bytes,
                (unsigned long long)(shard_bytes * cluster.size()));
    std::printf("verification: %llu/%llu ground-truth words "
                "undercounted -> %s\n",
                (unsigned long long)wrong,
                (unsigned long long)checked,
                wrong == 0 ? "ok" : "FAILED");

    // Show the most frequent words, map-reduce demo style.
    std::vector<std::pair<std::uint64_t, std::string>> top;
    for (const auto &[w, c] : merged)
        top.emplace_back(c, w);
    std::sort(top.rbegin(), top.rend());
    std::printf("top words:");
    for (std::size_t i = 0; i < 5 && i < top.size(); ++i)
        std::printf("  %s(%llu)", top[i].second.c_str(),
                    (unsigned long long)top[i].first);
    std::printf("\n");
    return wrong == 0 ? 0 : 1;
}
