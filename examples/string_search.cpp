/**
 * @file
 * Accelerated grep (paper section 7.3): files live in the
 * log-structured file system; the host transfers the needle and its
 * Morris-Pratt constants once, streams physical addresses, and the
 * in-store engines return only match positions.
 *
 * Run:  ./string_search [needle]
 */

#include <cstdio>
#include <string>

#include "analytics/text.hh"
#include "core/cluster.hh"
#include "isp/string_search.hh"
#include "sim/simulator.hh"
#include "sim/logging.hh"

using namespace bluedbm;

int
main(int argc, char **argv)
{
    std::string needle = argc > 1 ? argv[1] : "B1ueDBM!";

    sim::Simulator sim;
    core::ClusterParams params;
    params.topology = net::Topology::line(2);
    params.node.geometry = flash::Geometry::tiny();
    params.node.timing = flash::Timing::fast();
    core::Cluster cluster(sim, params);
    auto &node = cluster.node(0);

    // --- 1. Create a corpus with known needle positions and store
    //        it as files in the FS.
    auto corpus = analytics::makeCorpus(
        256 * 1024, needle, /*occurrences=*/9, /*seed=*/3);
    if (!node.fs().create("corpus.txt"))
        sim::fatal("create(corpus.txt) failed");
    bool ok = false;
    node.fs().append("corpus.txt", corpus.text,
                     [&](bool o) { ok = o; });
    sim.run();
    std::printf("corpus.txt: %llu bytes, %zu planted matches "
                "(ok=%d)\n",
                (unsigned long long)node.fs().size("corpus.txt"),
                corpus.needlePositions.size(), int(ok));

    // --- 2. Publish the file to the flash server ATU and search
    //        with the in-store Morris-Pratt engines.
    node.fs().publishHandle("corpus.txt", 1);
    // The ISP reads through its own server; hand it the addresses.
    node.ispServer(0).defineHandle(
        1, node.fs().physicalAddresses("corpus.txt"));

    isp::StringSearchEngine engine(sim, node.ispServer(0));
    isp::SearchResult result;
    sim::Tick start = sim.now();
    engine.search(1, node.fs().size("corpus.txt"),
                  params.node.geometry.pageSize, needle,
                  [&](isp::SearchResult r) { result = std::move(r); });
    sim.run();
    double us = sim::ticksToUs(sim.now() - start);

    std::printf("in-store search: %zu matches in %.0f us "
                "(%.0f MB/s scanned)\n",
                result.positions.size(), us,
                sim::bytesPerSec(result.bytesScanned,
                                 sim.now() - start) / 1e6);
    for (std::size_t i = 0; i < result.positions.size(); ++i)
        std::printf("  match %zu at byte %llu\n", i,
                    (unsigned long long)result.positions[i]);

    // --- 3. Verify against the generator's ground truth.
    bool exact = result.positions == corpus.needlePositions;
    std::printf("ground truth check: %s\n",
                exact ? "ok" : "FAILED");
    return exact ? 0 : 1;
}
