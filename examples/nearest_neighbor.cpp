/**
 * @file
 * Image-similarity style nearest-neighbor search (paper section
 * 7.1): items live in flash across the cluster, an LSH index on the
 * host picks candidate buckets, and the in-store processor computes
 * hamming distances without moving the dataset to the host.
 *
 * The example verifies the accelerated result against an exact
 * host-side scan.
 *
 * Run:  ./nearest_neighbor
 */

#include <cstdio>
#include <vector>

#include "analytics/hamming.hh"
#include "analytics/lsh.hh"
#include "core/cluster.hh"
#include "isp/nearest_neighbor.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/logging.hh"

using namespace bluedbm;

int
main()
{
    sim::Simulator sim;
    core::ClusterParams params;
    params.topology = net::Topology::line(2);
    params.node.geometry = flash::Geometry::tiny();
    params.node.timing = flash::Timing::fast();
    core::Cluster cluster(sim, params);
    const auto page = params.node.geometry.pageSize;

    // --- 1. Generate a dataset of binary items, one per page,
    //        spread across the cluster's global address space.
    const std::uint64_t items = 400;
    sim::Rng rng(1234);
    std::vector<flash::PageBuffer> dataset(items);
    analytics::LshIndex index(/*tables=*/8, /*bits=*/12, page);
    for (std::uint64_t i = 0; i < items; ++i) {
        dataset[i].resize(page);
        for (auto &b : dataset[i])
            b = std::uint8_t(rng.next());
        core::GlobalAddress ga = cluster.globalPage(i);
        flash::Status st = cluster.node(ga.node)
                               .card(ga.card)
                               .nand()
                               .store()
                               .program(ga.addr, dataset[i]);
        if (st != flash::Status::Ok)
            sim::fatal("dataset preload program failed");
        index.insert(i, dataset[i].data());
    }
    std::printf("dataset: %llu items of %u bytes across %u nodes\n",
                (unsigned long long)items, page, cluster.size());

    // --- 2. A query: a corrupted copy of some item (24 bits
    //        flipped), as an image-dedup workload would produce.
    std::uint64_t target = 137;
    flash::PageBuffer query = dataset[target];
    for (int f = 0; f < 24; ++f) {
        auto bit = rng.below(std::uint64_t(page) * 8);
        query[bit / 8] ^= std::uint8_t(1u << (bit % 8));
    }

    // --- 3. LSH gives the candidate bucket; candidates' *physical
    //        addresses* go to the in-store engine (figure 8).
    auto cand_ids = index.candidates(query.data());
    std::vector<core::GlobalAddress> cand_addrs;
    for (auto id : cand_ids)
        cand_addrs.push_back(cluster.globalPage(id));
    std::printf("LSH bucket: %zu candidates of %llu items\n",
                cand_ids.size(), (unsigned long long)items);

    isp::NearestNeighborEngine engine(cluster.node(0));
    isp::NnResult result;
    sim::Tick start = sim.now();
    engine.query(query, cand_addrs,
                 [&](isp::NnResult r) { result = r; });
    sim.run();

    std::uint64_t found =
        cand_ids.empty() ? ~0ull : cand_ids[result.bestIndex];
    std::printf("ISP answer: item %llu at hamming distance %llu "
                "(%llu comparisons, %.1f us)\n",
                (unsigned long long)found,
                (unsigned long long)result.bestDistance,
                (unsigned long long)result.comparisons,
                sim::ticksToUs(sim.now() - start));

    // --- 4. Verify against an exact scan on the host.
    std::uint64_t best = 0, best_d = ~0ull;
    for (std::uint64_t i = 0; i < items; ++i) {
        auto d = analytics::hammingDistance(query, dataset[i]);
        if (d < best_d) {
            best_d = d;
            best = i;
        }
    }
    std::printf("exact scan:  item %llu at distance %llu -> %s\n",
                (unsigned long long)best,
                (unsigned long long)best_d,
                best == found ? "MATCH" : "(LSH missed; rerun with "
                                          "more tables)");
    return best == found ? 0 : 1;
}
