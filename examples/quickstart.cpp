/**
 * @file
 * Quickstart: build a small BlueDBM appliance, store a file through
 * the log-structured file system, publish its physical addresses to
 * the flash server's address translation unit, and stream it through
 * the in-store processor -- the end-to-end flow of paper figure 8.
 *
 * Run:  ./quickstart
 */

#include <cstdio>
#include <string>

#include "core/cluster.hh"
#include "sim/simulator.hh"
#include "sim/logging.hh"

using namespace bluedbm;

int
main()
{
    // --- 1. Build the appliance: 4 nodes on a ring, two flash
    //        cards each (tiny geometry keeps the demo snappy).
    sim::Simulator sim;
    core::ClusterParams params;
    params.topology = net::Topology::ring(4, 2);
    params.node.geometry = flash::Geometry::tiny();
    params.node.timing = flash::Timing::fast();
    core::Cluster cluster(sim, params);

    std::printf("BlueDBM cluster: %u nodes, %.1f MB of flash, "
                "%u-port network\n",
                cluster.size(),
                double(cluster.capacityBytes()) / 1e6,
                params.topology.portsPerNode);

    // --- 2. Store a file through the log-structured file system.
    auto &node0 = cluster.node(0);
    if (!node0.fs().create("greeting"))
        sim::fatal("create(greeting) failed");
    std::string text =
        "hello from the in-store processor! BlueDBM reads flash "
        "without the operating system in the way. ";
    std::vector<std::uint8_t> payload;
    for (int i = 0; i < 50; ++i)
        payload.insert(payload.end(), text.begin(), text.end());
    bool ok = false;
    node0.fs().append("greeting", payload,
                      [&](bool o) { ok = o; });
    sim.run();
    std::printf("wrote '%s': %llu bytes across %zu flash pages "
                "(ok=%d)\n",
                "greeting",
                (unsigned long long)node0.fs().size("greeting"),
                node0.fs().physicalAddresses("greeting").size(),
                int(ok));

    // --- 3. Publish physical locations to the ISP's flash server
    //        (figure 8 step 1-2) and stream the file in store.
    node0.fs().publishHandle("greeting", /*handle=*/1);
    node0.ispServer(0).defineHandle(
        1, node0.fs().physicalAddresses("greeting"));

    std::uint64_t streamed = 0;
    sim::Tick start = sim.now();
    auto pages = node0.fs().physicalAddresses("greeting").size();
    node0.ispServer(0).streamRead(
        0, 1, 0, pages,
        [&](flash::PageBuffer page, flash::Status) {
        streamed += page.size();
    });
    sim.run();
    std::printf("ISP streamed %llu bytes in %.1f us (%.0f MB/s)\n",
                (unsigned long long)streamed,
                sim::ticksToUs(sim.now() - start),
                sim::bytesPerSec(streamed, sim.now() - start) / 1e6);

    // --- 4. Read a remote page through the integrated network:
    //        near-uniform latency into the global address space.
    core::GlobalAddress ga =
        cluster.globalPage(cluster.globalPages() / 2 + 1);
    sim::Tick t0 = sim.now();
    bool got = false;
    node0.ispReadRemote(ga.node, ga.card, ga.addr,
                        [&](flash::PageBuffer) { got = true; });
    sim.run();
    std::printf("remote page on node %u arrived in %.1f us "
                "(got=%d)\n",
                ga.node, sim::ticksToUs(sim.now() - t0), int(got));

    // --- 5. The compatibility FTL: a plain block device for
    //        unmodified software.
    flash::PageBuffer block(params.node.geometry.pageSize, 0x42);
    node0.ftl().write(7, block, [](bool) {});
    sim.run();
    node0.ftl().read(7, [&](flash::PageBuffer data, bool rok) {
        std::printf("FTL block 7 round-trip: %s\n",
                    rok && data == block ? "ok" : "FAILED");
    });
    sim.run();

    std::printf("simulated time: %.2f ms, events executed: %llu\n",
                sim::ticksToUs(sim.now()) / 1000.0,
                (unsigned long long)sim.eventsExecuted());
    return 0;
}
