/**
 * @file
 * KV service walkthrough: build a small appliance, stand up the
 * sharded key-value store over its global flash address space, use
 * the client API (put/get/multi-get/delete), then drive a short
 * Zipfian workload and print the tail-latency report.
 *
 * Run:  ./example_kv_service
 */

#include <cstdio>
#include <string>

#include "core/cluster.hh"
#include "kv/kv_router.hh"
#include "kv/kv_service.hh"
#include "sim/simulator.hh"
#include "workload/workload.hh"

using namespace bluedbm;
using flash::PageBuffer;

int
main()
{
    // --- 1. A 4-node ring with two flash cards per node; the KV
    //        service needs two extra network endpoints.
    sim::Simulator sim;
    core::ClusterParams params;
    params.topology = net::Topology::ring(4, 2);
    params.node.geometry = flash::Geometry::tiny();
    params.node.timing = flash::Timing::fast();
    params.network.endpoints = kv::kvRequiredEndpoints;
    core::Cluster cluster(sim, params);

    // --- 2. Shards + consistent-hash routing with 2 replicas per
    //        key, and the admission-controlled front-end.
    kv::KvParams kp;
    kp.replication = 2;
    kv::KvRouter router(sim, cluster, kp);
    kv::KvService service(sim, router);
    auto client = service.addClient(/*origin node=*/0);

    std::printf("KV appliance: %u nodes, R=%u, %.1f MB flash\n",
                cluster.size(), router.replication(),
                double(cluster.capacityBytes()) / 1e6);

    // --- 3. The client API.
    std::string text = "value stored in the global flash address "
                       "space";
    PageBuffer value(text.begin(), text.end());
    service.put(client, /*key=*/42, value, [&](kv::KvStatus st) {
        std::printf("put key 42: %s\n",
                    st == kv::KvStatus::Ok ? "ok" : "FAILED");
    });
    sim.run();

    auto owners = router.owners(42);
    std::printf("key 42 lives on nodes %u and %u\n", owners[0],
                owners[1]);

    service.get(client, 42, [&](PageBuffer v, kv::KvStatus st) {
        std::printf("get key 42: %s ('%s')\n",
                    st == kv::KvStatus::Ok ? "ok" : "miss",
                    std::string(v.begin(), v.end()).c_str());
    });
    sim.run();

    service.put(client, 7, PageBuffer(16, 0x07), [](kv::KvStatus) {});
    sim.run();
    service.multiGet(client, {42, 7, 999},
                     [&](std::vector<PageBuffer> values,
                         std::vector<kv::KvStatus> sts) {
        std::printf("multi-get [42, 7, 999]: %zu B, %zu B, %s\n",
                    values[0].size(), values[1].size(),
                    sts[2] == kv::KvStatus::NotFound ? "miss"
                                                     : "??");
    });
    sim.run();

    service.del(client, 42, [&](kv::KvStatus st) {
        std::printf("delete key 42: %s\n",
                    st == kv::KvStatus::Ok ? "ok" : "FAILED");
    });
    sim.run();

    // --- 4. A short Zipfian 95/5 workload from every node, with
    //        the HDR tail-latency report a serving system lives by.
    workload::WorkloadParams wp;
    wp.keys = 500;
    wp.valueBytes = 64;
    wp.mix.readFrac = 0.95;
    wp.zipfian = true;
    wp.theta = 0.99;
    wp.clientsPerNode = 4;
    wp.pipeline = 2;
    wp.totalOps = 5000;
    workload::WorkloadEngine engine(sim, cluster, router, service,
                                    wp);
    engine.preload([]() {});
    sim.run();
    engine.run([]() {});
    sim.run();

    const auto &lat = engine.allLatency();
    std::printf("\nworkload: %llu ops at %.0f ops/s\n",
                (unsigned long long)engine.completedOps(),
                engine.throughputOpsPerSec());
    std::printf("latency  p50 %.1f us   p95 %.1f us   p99 %.1f us "
                "  p99.9 %.1f us\n",
                sim::ticksToUs(lat.p50()),
                sim::ticksToUs(lat.p95()),
                sim::ticksToUs(lat.p99()),
                sim::ticksToUs(lat.p999()));
    std::printf("shards:  ");
    for (unsigned n = 0; n < cluster.size(); ++n)
        std::printf("node%u=%zu keys  ", n,
                    router.shard(net::NodeId(n)).keyCount());
    std::printf("\nremote/local shard ops: %llu/%llu\n",
                (unsigned long long)router.remoteOps(),
                (unsigned long long)router.localOps());

    // --- 5. The hot-key read path under skew: validated cache hits
    //        skip the flash read and the value bytes on the wire,
    //        and duplicate in-flight reads coalesce at the shard.
    std::uint64_t coalesced = 0, validated = 0;
    for (unsigned n = 0; n < cluster.size(); ++n) {
        coalesced += router.shard(net::NodeId(n)).coalescedGets();
        validated += router.shard(net::NodeId(n)).validatedGets();
    }
    std::printf("hot keys: %llu gets served from the per-node "
                "cache (%llu went stale and self-corrected),\n"
                "          %llu validated at shards without a "
                "flash read, %llu coalesced onto shared reads\n",
                (unsigned long long)router.cacheServedGets(),
                (unsigned long long)router.cacheStaleGets(),
                (unsigned long long)validated,
                (unsigned long long)coalesced);
    return 0;
}
