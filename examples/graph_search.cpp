/**
 * @file
 * Distributed graph traversal (paper section 7.2): vertices live one
 * per page across the cluster; the in-store engine chases dependent
 * lookups over the integrated network, which is what makes
 * latency-bound traversals practical on flash.
 *
 * The example runs a random walk plus a breadth-first reachability
 * probe and checks both against the in-memory reference graph.
 *
 * Run:  ./graph_search
 */

#include <cstdio>
#include <queue>
#include <set>

#include "analytics/graph.hh"
#include "core/cluster.hh"
#include "isp/graph_engine.hh"
#include "sim/simulator.hh"
#include "sim/logging.hh"

using namespace bluedbm;

int
main()
{
    sim::Simulator sim;
    core::ClusterParams params;
    params.topology = net::Topology::ring(4, 2);
    params.node.geometry = flash::Geometry::tiny();
    params.node.timing = flash::Timing::fast();
    core::Cluster cluster(sim, params);
    const auto page = params.node.geometry.pageSize;

    // --- 1. A random graph, one vertex per page, striped across
    //        the cluster's global address space.
    const std::uint64_t vertices = 600;
    auto graph = analytics::PageGraph::random(vertices, 6, 77);
    for (std::uint64_t v = 0; v < vertices; ++v) {
        core::GlobalAddress ga = cluster.globalPage(v);
        if (cluster.node(ga.node).card(ga.card).nand().store()
                .program(ga.addr, graph.serialize(v, page)) !=
            flash::Status::Ok)
            sim::fatal("graph preload program failed");
    }
    std::printf("graph: %llu vertices (degree 6) across %u nodes\n",
                (unsigned long long)vertices, cluster.size());

    // --- 2. Random walk via the ISP-F path (in-store processor +
    //        integrated network), recording the path.
    isp::GraphTraversalEngine engine(
        [&](std::uint64_t v, auto cb) {
            core::GlobalAddress ga = cluster.globalPage(v);
            cluster.node(0).ispReadRemote(ga.node, ga.card, ga.addr,
                                          cb);
        },
        /*seed=*/5, /*keep_path=*/true);

    isp::TraversalResult walk;
    sim::Tick start = sim.now();
    engine.walk(0, 400, [&](isp::TraversalResult r) { walk = r; });
    sim.run();
    double us = sim::ticksToUs(sim.now() - start);
    std::printf("walked %llu hops in %.0f us (%.0f dependent "
                "lookups/s)\n",
                (unsigned long long)walk.steps, us,
                double(walk.steps) / (us / 1e6));

    // --- 3. Validate every hop against the reference adjacency.
    bool valid = true;
    for (std::size_t i = 0; i + 1 < walk.path.size(); ++i) {
        const auto &nbrs = graph.neighbors(walk.path[i]);
        bool found = false;
        for (auto u : nbrs)
            found = found || u == walk.path[i + 1];
        valid = valid && found;
    }
    std::printf("every hop follows a real edge: %s\n",
                valid ? "ok" : "FAILED");

    // --- 4. Two-hop reachability probe via in-store reads,
    //        validated against reference BFS distances.
    auto dist = graph.bfs(0);
    std::set<std::uint64_t> frontier{0}, next;
    int errors = 0;
    for (int hop = 0; hop < 2; ++hop) {
        for (std::uint64_t v : frontier) {
            core::GlobalAddress ga = cluster.globalPage(v);
            cluster.node(0).ispReadRemote(
                ga.node, ga.card, ga.addr,
                [&, v](flash::PageBuffer data) {
                for (auto u : analytics::PageGraph::parse(data)) {
                    next.insert(u);
                    if (dist[u] > dist[v] + 1)
                        ++errors;
                }
            });
        }
        sim.run();
        frontier.swap(next);
        next.clear();
    }
    std::printf("2-hop frontier: %zu vertices, BFS-consistency "
                "errors: %d\n",
                frontier.size(), errors);
    return (valid && errors == 0) ? 0 : 1;
}
