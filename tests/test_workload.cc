/**
 * @file
 * Tests for the workload engine: key-distribution statistics
 * (Zipfian rank-frequency slope, determinism), Poisson arrivals,
 * and end-to-end closed/open-loop runs against a small cluster.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/cluster.hh"
#include "kv/kv_router.hh"
#include "kv/kv_service.hh"
#include "sim/simulator.hh"
#include "workload/key_dist.hh"
#include "workload/workload.hh"

using namespace bluedbm;
using workload::WorkloadEngine;
using workload::WorkloadParams;

namespace {

core::ClusterParams
kvCluster(unsigned nodes)
{
    core::ClusterParams p;
    p.topology = nodes == 2 ? net::Topology::line(2)
                            : net::Topology::ring(nodes, 2);
    p.node.geometry = flash::Geometry::tiny();
    p.node.timing = flash::Timing::fast();
    p.node.cards = 2;
    p.node.controllerTags = 64;
    p.network.endpoints = kv::kvRequiredEndpoints;
    return p;
}

} // namespace

// ---------------------------------------------------------------- //
// Key distributions
// ---------------------------------------------------------------- //

TEST(ZipfianKeys, DeterministicUnderFixedSeed)
{
    workload::ZipfianKeys a(1000, 0.99, 7);
    workload::ZipfianKeys b(1000, 0.99, 7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next()) << "draw " << i;

    workload::ZipfianKeys c(1000, 0.99, 8);
    bool diverged = false;
    for (int i = 0; i < 1000 && !diverged; ++i)
        diverged = a.next() != c.next();
    EXPECT_TRUE(diverged);
}

TEST(ZipfianKeys, StaysInRange)
{
    workload::ZipfianKeys g(100, 0.9, 3);
    for (int i = 0; i < 20000; ++i)
        ASSERT_LT(g.next(), 100u);
}

TEST(ZipfianKeys, RankZeroIsHottest)
{
    workload::ZipfianKeys g(10000, 0.99, 5);
    std::vector<unsigned> counts(10000, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[g.next()];
    // Rank 0 beats every rank past the head by a wide margin.
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], counts[100]);
    EXPECT_GT(counts[10], counts[1000] / 2 + 1);
}

TEST(ZipfianKeys, RankFrequencySlopeMatchesTheta)
{
    // Empirical check of the defining property: log(freq) vs
    // log(rank+1) is linear with slope -theta.
    const double theta = 0.8;
    const std::uint64_t n = 1000;
    workload::ZipfianKeys g(n, theta, 11);
    std::vector<double> counts(n, 0.0);
    const int samples = 400000;
    for (int i = 0; i < samples; ++i)
        counts[g.next()] += 1.0;

    // Least-squares fit over the well-populated head (ranks 0..49).
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const int m = 50;
    for (int r = 0; r < m; ++r) {
        ASSERT_GT(counts[r], 0.0);
        double x = std::log(double(r + 1));
        double y = std::log(counts[r]);
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    double slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
    EXPECT_NEAR(slope, -theta, 0.1);
}

TEST(UniformKeys, CoversTheSpaceEvenly)
{
    workload::UniformKeys g(100, 9);
    std::vector<unsigned> counts(100, 0);
    for (int i = 0; i < 50000; ++i) {
        std::uint64_t k = g.next();
        ASSERT_LT(k, 100u);
        ++counts[k];
    }
    for (unsigned c : counts) {
        EXPECT_GT(c, 350u); // mean 500, generous band
        EXPECT_LT(c, 650u);
    }
}

TEST(PoissonArrivals, MeanGapMatchesRate)
{
    const double rate = 1e6; // 1 op/us
    workload::PoissonArrivals p(rate, 13);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += double(p.nextGap());
    double mean_us = sum / n / double(sim::oneUs);
    EXPECT_NEAR(mean_us, 1.0, 0.05);
}

// ---------------------------------------------------------------- //
// Workload engine
// ---------------------------------------------------------------- //

TEST(WorkloadEngine, PreloadWritesEveryKeyReplicated)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});
    kv::KvService service(sim, router);

    WorkloadParams wp;
    wp.keys = 200;
    wp.valueBytes = 32;
    wp.totalOps = 0;
    WorkloadEngine engine(sim, cluster, router, service, wp);

    bool loaded = false;
    engine.preload([&]() { loaded = true; });
    sim.run();
    ASSERT_TRUE(loaded);

    std::size_t replicas = 0;
    for (unsigned n = 0; n < 4; ++n)
        replicas += router.shard(net::NodeId(n)).keyCount();
    EXPECT_EQ(replicas, 200u * 2); // R = 2 copies of every key

    // Values round-trip through the full stack.
    flash::PageBuffer got;
    router.get(0, 123, [&](flash::PageBuffer v, kv::KvStatus st) {
        EXPECT_EQ(st, kv::KvStatus::Ok);
        got = std::move(v);
    });
    sim.run();
    EXPECT_EQ(got, WorkloadEngine::makeValue(123, 32));
}

TEST(WorkloadEngine, ClosedLoopCompletesAndRecords)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});
    kv::KvService service(sim, router);

    WorkloadParams wp;
    wp.keys = 300;
    wp.valueBytes = 64;
    wp.mix.readFrac = 0.9;
    wp.zipfian = true;
    wp.theta = 0.9;
    wp.clientsPerNode = 4;
    wp.pipeline = 2;
    wp.totalOps = 2000;
    wp.seed = 17;
    WorkloadEngine engine(sim, cluster, router, service, wp);

    bool loaded = false;
    engine.preload([&]() { loaded = true; });
    sim.run();
    ASSERT_TRUE(loaded);

    bool finished = false;
    engine.run([&]() { finished = true; });
    sim.run();
    ASSERT_TRUE(finished);

    EXPECT_EQ(engine.completedOps(), 2000u);
    EXPECT_EQ(engine.rejectedOps(), 0u);
    EXPECT_EQ(engine.notFoundOps(), 0u); // all keys preloaded
    EXPECT_EQ(engine.readLatency().count() +
                  engine.writeLatency().count(),
              2000u);
    // Mix respected within statistical noise.
    EXPECT_NEAR(double(engine.readLatency().count()) / 2000.0, 0.9,
                0.05);
    EXPECT_GT(engine.throughputOpsPerSec(), 0.0);
    // Percentiles are ordered.
    EXPECT_LE(engine.allLatency().p50(), engine.allLatency().p99());
    EXPECT_LE(engine.allLatency().p99(), engine.allLatency().p999());
    EXPECT_LE(engine.allLatency().p999(), engine.allLatency().max());
}

TEST(WorkloadEngine, ScanMixIssuesMultiGets)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});
    kv::KvService service(sim, router);

    WorkloadParams wp;
    wp.keys = 200;
    wp.valueBytes = 32;
    wp.mix.readFrac = 0.5;
    wp.mix.scanFrac = 0.3;
    wp.mix.scanLen = 4;
    wp.clientsPerNode = 2;
    wp.totalOps = 600;
    WorkloadEngine engine(sim, cluster, router, service, wp);

    engine.preload([]() {});
    sim.run();
    bool finished = false;
    engine.run([&]() { finished = true; });
    sim.run();
    ASSERT_TRUE(finished);
    EXPECT_GT(engine.scanLatency().count(), 0u);
    EXPECT_EQ(engine.readLatency().count() +
                  engine.writeLatency().count() +
                  engine.scanLatency().count(),
              600u);
    // A scan touches scanLen keys, so it should cost more than the
    // median single read at equal load.
    EXPECT_GE(engine.scanLatency().p50(),
              engine.readLatency().p50());
}

TEST(WorkloadEngine, OpenLoopPoissonCompletes)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvRouter router(sim, cluster, kv::KvParams{});
    kv::KvService service(sim, router);

    WorkloadParams wp;
    wp.keys = 100;
    wp.valueBytes = 32;
    wp.clientsPerNode = 2;
    wp.openLoop = true;
    wp.arrivalsPerSec = 20000; // per client, comfortably served
    wp.totalOps = 800;
    wp.client.window = 4;
    wp.client.queueCap = 64;
    WorkloadEngine engine(sim, cluster, router, service, wp);

    engine.preload([]() {});
    sim.run();
    bool finished = false;
    engine.run([&]() { finished = true; });
    sim.run();
    ASSERT_TRUE(finished);
    EXPECT_EQ(engine.completedOps(), 800u);
    EXPECT_EQ(engine.rejectedOps() + engine.allLatency().count(),
              800u);
    EXPECT_GT(engine.throughputOpsPerSec(), 0.0);
}

TEST(WorkloadEngine, DeterministicAcrossRuns)
{
    auto once = [](std::uint64_t seed) {
        sim::Simulator sim;
        core::Cluster cluster(sim, kvCluster(2));
        kv::KvRouter router(sim, cluster, kv::KvParams{});
        kv::KvService service(sim, router);
        WorkloadParams wp;
        wp.keys = 100;
        wp.valueBytes = 32;
        wp.clientsPerNode = 2;
        wp.totalOps = 400;
        wp.seed = seed;
        workload::WorkloadEngine engine(sim, cluster, router,
                                        service, wp);
        engine.preload([]() {});
        sim.run();
        engine.run([]() {});
        sim.run();
        return std::make_pair(sim.now(),
                              engine.allLatency().p99());
    };
    auto a = once(5), b = once(5), c = once(6);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

// ---------------------------------------------------------------- //
// Retry-after backoff + phased runs with pause/resume
// ---------------------------------------------------------------- //

TEST(Workload, HonorsRetryAfterBackoff)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster);
    kv::KvService service(sim, router);

    WorkloadParams wp;
    wp.keys = 200;
    wp.valueBytes = 64;
    wp.totalOps = 2000;
    wp.clientsPerNode = 2;
    // Pipeline deeper than the admission window + queue: the
    // overflow is rejected Overloaded, and honoring clients answer
    // each rejection with a jittered retry-after pause instead of
    // an instant resubmit.
    wp.pipeline = 8;
    wp.client.window = 2;
    wp.client.queueCap = 2;
    wp.honorRetryAfter = true;
    wp.mix.readFrac = 0.5;
    WorkloadEngine engine(sim, cluster, router, service, wp);

    bool loaded = false;
    engine.preload([&]() { loaded = true; });
    sim.run();
    ASSERT_TRUE(loaded);

    bool done = false;
    engine.run([&]() { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(engine.completedOps(), wp.totalOps);
    EXPECT_GT(engine.rejectedOps(), 0u);
    EXPECT_GT(engine.backoffs(), 0u);
    EXPECT_LE(engine.backoffs(), engine.rejectedOps());
}

TEST(Workload, PhasedRunRedistributesAroundPausedNode)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster);
    kv::KvService service(sim, router);

    WorkloadParams wp;
    wp.keys = 200;
    wp.valueBytes = 64;
    wp.clientsPerNode = 2;
    wp.clientNodes = 3; // node 3 carries no client sessions
    wp.pipeline = 2;
    WorkloadEngine engine(sim, cluster, router, service, wp);
    EXPECT_EQ(service.clientCount(), 3u * wp.clientsPerNode);

    bool loaded = false;
    engine.preload([&]() { loaded = true; });
    sim.run();
    ASSERT_TRUE(loaded);

    // Phase 1: everyone serving.
    bool p1 = false;
    engine.runPhase(600, [&]() { p1 = true; });
    sim.run();
    EXPECT_TRUE(p1);
    EXPECT_EQ(engine.completedOps(), 600u);
    EXPECT_GT(engine.readLatency().count(), 0u);

    // Phase 2: node 1's clients die mid-phase (ops already in
    // flight). Their quota moves to the survivors and the phase
    // still reaches its op target.
    bool p2 = false;
    engine.runPhase(600, [&]() { p2 = true; });
    engine.pauseNode(net::NodeId(1));
    sim.run();
    EXPECT_TRUE(p2);
    EXPECT_EQ(engine.completedOps(), 600u);

    // Phase 3: the node is back; per-phase counters reset.
    engine.resumeNode(net::NodeId(1));
    bool p3 = false;
    engine.runPhase(300, [&]() { p3 = true; });
    sim.run();
    EXPECT_TRUE(p3);
    EXPECT_EQ(engine.completedOps(), 300u);
}
