/**
 * @file
 * Unit tests for the serial lane: wire pacing, token credit
 * accounting, the dequeue hook used for backpressure chaining, and
 * cut-through head/tail bookkeeping.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/link.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using net::Lane;
using net::LaneParams;
using net::Message;
using sim::Tick;

namespace {

Message
msg(std::uint32_t bytes, Tick head_arrival = 0)
{
    Message m;
    m.bytes = bytes;
    m.headArrival = head_arrival;
    return m;
}

} // namespace

TEST(Lane, SingleMessageTiming)
{
    sim::Simulator sim;
    LaneParams p;
    Lane lane(sim, p);
    Tick at = 0;
    lane.setDeliver([&](Message) { at = sim.now(); });
    lane.send(msg(1024));
    sim.run();
    Tick serialization = sim::transferTicks(
        lane.wireBytes(1024), p.physBytesPerSec);
    EXPECT_EQ(at, serialization + p.hopLatency);
    EXPECT_EQ(lane.deliveredMessages(), 1u);
    EXPECT_EQ(lane.deliveredBytes(), 1024u);
}

TEST(Lane, WireBytesAddProtocolOverhead)
{
    sim::Simulator sim;
    LaneParams p;
    Lane lane(sim, p);
    // 0.82 efficiency: 8200 payload bytes occupy ~10000 wire bytes.
    EXPECT_NEAR(double(lane.wireBytes(8200)), 10000.0, 2.0);
    EXPECT_GT(lane.wireBytes(16), 16u);
}

TEST(Lane, CreditsConsumeAndReturn)
{
    sim::Simulator sim;
    LaneParams p;
    p.bufferBytes = 4096;
    Lane lane(sim, p);
    std::vector<Message> delivered;
    lane.setDeliver(
        [&](Message m) { delivered.push_back(std::move(m)); });

    lane.send(msg(4096));
    EXPECT_EQ(lane.credits(), 0u); // consumed at transmit start
    sim.run();
    ASSERT_EQ(delivered.size(), 1u);

    // The receiver has not drained: credits stay consumed, a second
    // message waits in the queue.
    lane.send(msg(4096));
    sim.run();
    EXPECT_EQ(delivered.size(), 1u);
    EXPECT_EQ(lane.queued(), 1u);

    // Draining returns the tokens (after the hop latency) and the
    // queued message flows.
    lane.releaseCredits(4096);
    sim.run();
    EXPECT_EQ(delivered.size(), 2u);
}

TEST(Lane, MessagesDeliverInFifoOrder)
{
    sim::Simulator sim;
    LaneParams p;
    Lane lane(sim, p);
    std::vector<int> order;
    lane.setDeliver([&](Message m) {
        order.push_back(m.payload.take<int>());
        lane.releaseCredits(m.bytes);
    });
    for (int i = 0; i < 20; ++i) {
        Message m = msg(2000 + 100 * (i % 3));
        m.payload = net::PayloadRef::inlineOf(i);
        lane.send(std::move(m));
    }
    sim.run();
    ASSERT_EQ(order.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Lane, OnStartHookFiresAtDequeueNotDelivery)
{
    sim::Simulator sim;
    LaneParams p;
    Lane lane(sim, p);
    Tick started = sim::maxTick, delivered_at = 0;
    lane.setDeliver([&](Message) { delivered_at = sim.now(); });
    lane.send(msg(8192), [&]() { started = sim.now(); });
    sim.run();
    EXPECT_EQ(started, 0u); // credits and wire were free immediately
    EXPECT_GT(delivered_at, started);
}

TEST(Lane, OnStartDeferredWhileCreditBlocked)
{
    sim::Simulator sim;
    LaneParams p;
    p.bufferBytes = 1024;
    Lane lane(sim, p);
    lane.setDeliver([](Message) {});
    lane.send(msg(1024)); // eats all credits
    bool started = false;
    lane.send(msg(1024), [&]() { started = true; });
    sim.run();
    EXPECT_FALSE(started); // still queued, upstream not released
    lane.releaseCredits(1024);
    sim.run();
    EXPECT_TRUE(started);
}

TEST(Lane, BackToBackMessagesSaturateWire)
{
    sim::Simulator sim;
    LaneParams p;
    Lane lane(sim, p);
    Tick last = 0;
    int got = 0;
    lane.setDeliver([&](Message m) {
        ++got;
        last = sim.now();
        lane.releaseCredits(m.bytes);
    });
    const int n = 400;
    for (int i = 0; i < n; ++i)
        lane.send(msg(2048));
    sim.run();
    ASSERT_EQ(got, n);
    double rate = sim::bytesPerSec(2048ull * n, last);
    EXPECT_NEAR(rate, p.effectiveBytesPerSec(),
                p.effectiveBytesPerSec() * 0.02);
}

TEST(Lane, CutThroughHeadArrivalReducesForwardingDelay)
{
    // A message whose head arrived earlier (cut-through from the
    // previous hop) finishes serializing sooner than one issued
    // cold at the same instant.
    sim::Simulator sim;
    LaneParams p;
    Lane warm(sim, p), cold(sim, p);
    Tick warm_at = 0, cold_at = 0;
    warm.setDeliver([&](Message) { warm_at = sim.now(); });
    cold.setDeliver([&](Message) { cold_at = sim.now(); });

    // Both sends happen at t = 50 us; the warm lane's message head
    // arrived at t = 10 us.
    sim.scheduleAt(sim::usToTicks(50), [&]() {
        warm.send(msg(8192, sim::usToTicks(10)));
        cold.send(msg(8192, sim::usToTicks(50)));
    });
    sim.run();
    EXPECT_LT(warm_at, cold_at);
    // But never earlier than one hop after the tail got here.
    EXPECT_GE(warm_at, sim::usToTicks(50) + p.hopLatency);
}

TEST(LaneDeath, OversizedMessageIsFatal)
{
    sim::Simulator sim;
    LaneParams p;
    p.bufferBytes = 1024;
    Lane lane(sim, p);
    lane.setDeliver([](Message) {});
    EXPECT_DEATH(lane.send(msg(2048)), "exceeds lane buffer");
}
