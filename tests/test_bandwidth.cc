/**
 * @file
 * Unit tests for latency-rate servers, server pools and token credits.
 */

#include <gtest/gtest.h>

#include "sim/bandwidth.hh"
#include "sim/types.hh"

using namespace bluedbm;
using sim::Tick;

TEST(LatencyRateServer, SingleTransferTiming)
{
    // 1 GB/s, 10 us latency: 8192 bytes serialize in 8.192 us.
    sim::LatencyRateServer ch(1e9, sim::usToTicks(10));
    Tick done = ch.occupy(0, 8192);
    EXPECT_EQ(done, sim::nsToTicks(8192) + sim::usToTicks(10));
    EXPECT_EQ(ch.busyUntil(), sim::nsToTicks(8192));
}

TEST(LatencyRateServer, BackToBackTransfersPipeline)
{
    sim::LatencyRateServer ch(1e9, sim::usToTicks(1));
    Tick d1 = ch.occupy(0, 1000);
    Tick d2 = ch.occupy(0, 1000);
    // Second transfer waits for the first to clear the channel but the
    // latencies overlap.
    EXPECT_EQ(d2 - d1, sim::nsToTicks(1000));
}

TEST(LatencyRateServer, IdleChannelStartsImmediately)
{
    sim::LatencyRateServer ch(1e9, 0);
    ch.occupy(0, 1000);
    // Issue long after the channel drained.
    Tick later = sim::usToTicks(100);
    Tick done = ch.occupy(later, 1000);
    EXPECT_EQ(done, later + sim::nsToTicks(1000));
}

TEST(LatencyRateServer, SustainedRateMatchesConfig)
{
    // Push 1000 x 8 KB through a 1.2 GB/s channel; the finish time
    // must correspond to 1.2 GB/s within rounding.
    sim::LatencyRateServer ch(1.2e9, 0);
    Tick done = 0;
    const std::uint64_t n = 1000, sz = 8192;
    for (std::uint64_t i = 0; i < n; ++i)
        done = ch.occupy(0, sz);
    double rate = sim::bytesPerSec(n * sz, done);
    EXPECT_NEAR(rate, 1.2e9, 1.2e9 * 1e-3);
    EXPECT_EQ(ch.totalBytes(), n * sz);
}

TEST(LatencyRateServer, TracksTotalBytes)
{
    sim::LatencyRateServer ch(1e9, 0);
    ch.occupy(0, 100);
    ch.occupy(0, 200);
    EXPECT_EQ(ch.totalBytes(), 300u);
}

TEST(ServerPool, ParallelEnginesMultiplyThroughput)
{
    // 4 engines at 400 MB/s each: 16 transfers of 1 MB finish 4x
    // faster than on one engine.
    sim::ServerPool pool(4, 400e6, 0);
    Tick done = 0;
    for (int i = 0; i < 16; ++i)
        done = std::max(done, pool.occupy(0, 1 << 20));
    sim::LatencyRateServer single(400e6, 0);
    Tick single_done = 0;
    for (int i = 0; i < 16; ++i)
        single_done = single.occupy(0, 1 << 20);
    EXPECT_NEAR(static_cast<double>(single_done) /
                    static_cast<double>(done), 4.0, 0.01);
}

TEST(ServerPool, PicksEarliestFreeEngine)
{
    sim::ServerPool pool(2, 1e9, 0);
    Tick a = pool.occupy(0, 1000); // engine 0 busy till 1000ns
    Tick b = pool.occupy(0, 500);  // engine 1 busy till 500ns
    // Next transfer should land on engine 1 (earliest free).
    Tick c = pool.occupy(0, 100);
    EXPECT_EQ(c, b + sim::nsToTicks(100));
    EXPECT_LT(c, a + sim::nsToTicks(100));
}

TEST(TokenCredits, TakeAndGiveRoundTrip)
{
    sim::TokenCredits credits(3);
    EXPECT_EQ(credits.count(), 3u);
    credits.take();
    credits.take();
    EXPECT_EQ(credits.count(), 1u);
    EXPECT_TRUE(credits.available());
    credits.take();
    EXPECT_FALSE(credits.available());
    credits.give();
    EXPECT_TRUE(credits.available());
    EXPECT_EQ(credits.max(), 3u);
}

TEST(TokenCreditsDeath, TakeWithoutTokensPanics)
{
    sim::TokenCredits credits(1);
    credits.take();
    EXPECT_DEATH(credits.take(), "no tokens");
}

TEST(TokenCreditsDeath, GivePastMaxPanics)
{
    sim::TokenCredits credits(1);
    EXPECT_DEATH(credits.give(), "overflow");
}
