/**
 * @file
 * Timing and ECC tests for the NAND array model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "flash/nand_array.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using flash::Address;
using flash::Geometry;
using flash::NandArray;
using flash::PageBuffer;
using flash::ReadResult;
using flash::Status;
using flash::Timing;
using sim::Tick;

namespace {

struct Fixture
{
    sim::Simulator sim;
    Geometry geo = Geometry::tiny();
    Timing timing = Timing::fast();
};

Tick
wireTime(const Geometry &g, const Timing &t)
{
    std::uint64_t bytes =
        g.pageSize + flash::Secded72::checkBytes(g.pageSize);
    return sim::transferTicks(bytes, t.busBytesPerSec);
}

} // namespace

TEST(NandArray, SingleReadLatency)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    Tick done_at = 0;
    nand.read(Address{0, 0, 0, 0}, [&](ReadResult res) {
        EXPECT_EQ(res.status, Status::Ok);
        EXPECT_EQ(res.data.size(), f.geo.pageSize);
        done_at = f.sim.now();
    });
    f.sim.run();
    Tick expected = f.timing.readUs + wireTime(f.geo, f.timing) +
        f.timing.controllerOverhead;
    EXPECT_EQ(done_at, expected);
    EXPECT_EQ(nand.pagesRead(), 1u);
}

TEST(NandArray, SameChipReadsSerialize)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    std::vector<Tick> done;
    for (int i = 0; i < 2; ++i) {
        nand.read(Address{0, 0, 0, std::uint32_t(i)},
                  [&](ReadResult) { done.push_back(f.sim.now()); });
    }
    f.sim.run();
    ASSERT_EQ(done.size(), 2u);
    // Second read's sense cannot start until the first finishes.
    EXPECT_GE(done[1] - done[0], f.timing.readUs);
}

TEST(NandArray, DifferentChipsOverlapSenseSameBusSerializesXfer)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    std::vector<Tick> done;
    // Two chips on the same bus: senses overlap, transfers serialize.
    nand.read(Address{0, 0, 0, 0},
              [&](ReadResult) { done.push_back(f.sim.now()); });
    nand.read(Address{0, 1, 0, 0},
              [&](ReadResult) { done.push_back(f.sim.now()); });
    f.sim.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[1] - done[0], wireTime(f.geo, f.timing));
}

TEST(NandArray, DifferentBusesFullyParallel)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    std::vector<Tick> done;
    nand.read(Address{0, 0, 0, 0},
              [&](ReadResult) { done.push_back(f.sim.now()); });
    nand.read(Address{1, 0, 0, 0},
              [&](ReadResult) { done.push_back(f.sim.now()); });
    f.sim.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], done[1]);
}

TEST(NandArray, WriteReadRoundTripData)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    PageBuffer data(f.geo.pageSize);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 3);

    bool wrote = false;
    nand.write(Address{0, 0, 0, 0}, data, [&](Status st) {
        EXPECT_EQ(st, Status::Ok);
        wrote = true;
    });
    f.sim.run();
    ASSERT_TRUE(wrote);

    PageBuffer got;
    nand.read(Address{0, 0, 0, 0},
              [&](ReadResult res) { got = std::move(res.data); });
    f.sim.run();
    EXPECT_EQ(got, data);
}

TEST(NandArray, WriteTimingIncludesProgram)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    Tick done_at = 0;
    nand.write(Address{0, 0, 0, 0}, PageBuffer(f.geo.pageSize, 1),
               [&](Status) { done_at = f.sim.now(); });
    f.sim.run();
    Tick expected = wireTime(f.geo, f.timing) + f.timing.programUs +
        f.timing.controllerOverhead;
    EXPECT_EQ(done_at, expected);
}

TEST(NandArray, EraseTimingAndEffect)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    nand.write(Address{0, 0, 2, 0}, PageBuffer(f.geo.pageSize, 1),
               [](Status) {});
    f.sim.run();

    Tick start = f.sim.now();
    Tick done_at = 0;
    nand.erase(Address{0, 0, 2, 0}, [&](Status st) {
        EXPECT_EQ(st, Status::Ok);
        done_at = f.sim.now();
    });
    f.sim.run();
    EXPECT_EQ(done_at - start,
              f.timing.eraseUs + f.timing.controllerOverhead);
    EXPECT_FALSE(nand.store().isProgrammed(Address{0, 0, 2, 0}));
    EXPECT_EQ(nand.blocksErased(), 1u);
}

TEST(NandArray, EnoughChipsInFlightSaturateBusBandwidth)
{
    // Keeping many reads in flight on one bus must achieve the bus's
    // configured rate (the paper: "multiple commands must be in-flight
    // ... to saturate the bandwidth"). tR/transfer ~ 9 here, so 16
    // chips provide enough overlap.
    sim::Simulator sim;
    Geometry geo = Geometry::tiny();
    geo.buses = 1;
    geo.chipsPerBus = 16;
    Timing timing = Timing::fast();
    NandArray nand(sim, geo, timing);
    const int reads = 256;
    int done = 0;
    Tick last = 0;
    for (int i = 0; i < reads; ++i) {
        Address a{0, std::uint32_t(i % geo.chipsPerBus),
                  std::uint32_t((i / geo.chipsPerBus) % 8),
                  std::uint32_t(i % 16)};
        nand.read(a, [&](ReadResult) {
            ++done;
            last = sim.now();
        });
    }
    sim.run();
    ASSERT_EQ(done, reads);
    std::uint64_t wire_bytes = std::uint64_t(reads) *
        (geo.pageSize + flash::Secded72::checkBytes(geo.pageSize));
    double rate = sim::bytesPerSec(wire_bytes, last);
    EXPECT_GT(rate, timing.busBytesPerSec * 0.9);
}

TEST(NandArray, TooFewChipsCannotSaturateBus)
{
    // Counter-property: with 2 chips and tR >> transfer, the bus
    // cannot be kept busy; achieved rate is chip-limited.
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    const int reads = 64;
    int done = 0;
    Tick last = 0;
    for (int i = 0; i < reads; ++i) {
        Address a{0, std::uint32_t(i % f.geo.chipsPerBus),
                  std::uint32_t(i / 16), std::uint32_t(i % 16)};
        nand.read(a, [&](ReadResult) {
            ++done;
            last = f.sim.now();
        });
    }
    f.sim.run();
    ASSERT_EQ(done, reads);
    std::uint64_t wire = f.geo.pageSize +
        flash::Secded72::checkBytes(f.geo.pageSize);
    double rate = sim::bytesPerSec(std::uint64_t(reads) * wire, last);
    // Chip-limited bound: chips * wire / tR.
    double chip_bound = 2.0 * static_cast<double>(wire) /
        sim::ticksToSec(f.timing.readUs);
    EXPECT_LT(rate, chip_bound * 1.05);
    EXPECT_GT(rate, chip_bound * 0.85);
}

TEST(NandArray, ErrorInjectionGetsCorrected)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing, 77);
    // ~1e-5 BER over (512+64)*8 = 4608 bits => ~0.046 flips/page;
    // over 2000 reads expect ~90 corrected pages, ~0 uncorrectable.
    nand.setBitErrorRate(1e-5);
    int corrected_pages = 0, uncorrectable = 0, clean = 0;
    for (int i = 0; i < 2000; ++i) {
        Address a = Address::fromLinear(
            f.geo, std::uint64_t(i) % f.geo.pages());
        nand.read(a, [&](ReadResult res) {
            switch (res.status) {
              case Status::Ok: ++clean; break;
              case Status::Corrected: ++corrected_pages; break;
              case Status::Uncorrectable: ++uncorrectable; break;
              default: FAIL();
            }
        });
    }
    f.sim.run();
    EXPECT_GT(corrected_pages, 20);
    // A page may hold several corrected bits (one per word), so the
    // bit count dominates the page count.
    EXPECT_GE(static_cast<int>(nand.bitsCorrected()),
              corrected_pages);
    EXPECT_LE(uncorrectable, 2);
    EXPECT_GT(clean, 1000);
}

TEST(NandArray, CorrectedDataMatchesOriginal)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing, 33);
    PageBuffer data(f.geo.pageSize, 0x5a);
    nand.write(Address{0, 0, 0, 0}, data, [](Status) {});
    f.sim.run();

    nand.setBitErrorRate(5e-5);
    int checked = 0;
    for (int i = 0; i < 200; ++i) {
        nand.read(Address{0, 0, 0, 0}, [&](ReadResult res) {
            if (res.status != Status::Uncorrectable) {
                EXPECT_EQ(res.data, data);
                ++checked;
            }
        });
        f.sim.run();
    }
    EXPECT_GT(checked, 150);
}

TEST(NandArray, AlwaysDecodeVerifiesCleanPages)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    nand.setAlwaysDecode(true);
    Status st = Status::Uncorrectable;
    nand.read(Address{0, 0, 0, 0},
              [&](ReadResult res) { st = res.status; });
    f.sim.run();
    EXPECT_EQ(st, Status::Ok);
    EXPECT_EQ(nand.bitsCorrected(), 0u);
}
