/**
 * @file
 * Timing and ECC tests for the NAND array model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "flash/nand_array.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using flash::Address;
using flash::Geometry;
using flash::NandArray;
using flash::PageBuffer;
using flash::ReadResult;
using flash::Status;
using flash::Timing;
using sim::Tick;

namespace {

struct Fixture
{
    sim::Simulator sim;
    Geometry geo = Geometry::tiny();
    Timing timing = Timing::fast();
};

Tick
wireTime(const Geometry &g, const Timing &t)
{
    std::uint64_t bytes =
        g.pageSize + flash::Secded72::checkBytes(g.pageSize);
    return sim::transferTicks(bytes, t.busBytesPerSec);
}

} // namespace

TEST(NandArray, SingleReadLatency)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    Tick done_at = 0;
    nand.read(Address{0, 0, 0, 0}, [&](ReadResult res) {
        EXPECT_EQ(res.status, Status::Ok);
        EXPECT_EQ(res.data.size(), f.geo.pageSize);
        done_at = f.sim.now();
    });
    f.sim.run();
    Tick expected = f.timing.readUs + wireTime(f.geo, f.timing) +
        f.timing.controllerOverhead;
    EXPECT_EQ(done_at, expected);
    EXPECT_EQ(nand.pagesRead(), 1u);
}

TEST(NandArray, SameChipReadsSerialize)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    std::vector<Tick> done;
    for (int i = 0; i < 2; ++i) {
        nand.read(Address{0, 0, 0, std::uint32_t(i)},
                  [&](ReadResult) { done.push_back(f.sim.now()); });
    }
    f.sim.run();
    ASSERT_EQ(done.size(), 2u);
    // Second read's sense cannot start until the first finishes.
    EXPECT_GE(done[1] - done[0], f.timing.readUs);
}

TEST(NandArray, DifferentChipsOverlapSenseSameBusSerializesXfer)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    std::vector<Tick> done;
    // Two chips on the same bus: senses overlap, transfers serialize.
    nand.read(Address{0, 0, 0, 0},
              [&](ReadResult) { done.push_back(f.sim.now()); });
    nand.read(Address{0, 1, 0, 0},
              [&](ReadResult) { done.push_back(f.sim.now()); });
    f.sim.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[1] - done[0], wireTime(f.geo, f.timing));
}

TEST(NandArray, DifferentBusesFullyParallel)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    std::vector<Tick> done;
    nand.read(Address{0, 0, 0, 0},
              [&](ReadResult) { done.push_back(f.sim.now()); });
    nand.read(Address{1, 0, 0, 0},
              [&](ReadResult) { done.push_back(f.sim.now()); });
    f.sim.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], done[1]);
}

TEST(NandArray, WriteReadRoundTripData)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    PageBuffer data(f.geo.pageSize);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 3);

    bool wrote = false;
    nand.write(Address{0, 0, 0, 0}, data, [&](Status st) {
        EXPECT_EQ(st, Status::Ok);
        wrote = true;
    });
    f.sim.run();
    ASSERT_TRUE(wrote);

    PageBuffer got;
    nand.read(Address{0, 0, 0, 0},
              [&](ReadResult res) { got = std::move(res.data); });
    f.sim.run();
    EXPECT_EQ(got, data);
}

TEST(NandArray, WriteTimingIncludesProgram)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    Tick done_at = 0;
    nand.write(Address{0, 0, 0, 0}, PageBuffer(f.geo.pageSize, 1),
               [&](Status) { done_at = f.sim.now(); });
    f.sim.run();
    Tick expected = wireTime(f.geo, f.timing) + f.timing.programUs +
        f.timing.controllerOverhead;
    EXPECT_EQ(done_at, expected);
}

TEST(NandArray, EraseTimingAndEffect)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    nand.write(Address{0, 0, 2, 0}, PageBuffer(f.geo.pageSize, 1),
               [](Status) {});
    f.sim.run();

    Tick start = f.sim.now();
    Tick done_at = 0;
    nand.erase(Address{0, 0, 2, 0}, [&](Status st) {
        EXPECT_EQ(st, Status::Ok);
        done_at = f.sim.now();
    });
    f.sim.run();
    EXPECT_EQ(done_at - start,
              f.timing.eraseUs + f.timing.controllerOverhead);
    EXPECT_FALSE(nand.store().isProgrammed(Address{0, 0, 2, 0}));
    EXPECT_EQ(nand.blocksErased(), 1u);
}

TEST(NandArray, EnoughChipsInFlightSaturateBusBandwidth)
{
    // Keeping many reads in flight on one bus must achieve the bus's
    // configured rate (the paper: "multiple commands must be in-flight
    // ... to saturate the bandwidth"). tR/transfer ~ 9 here, so 16
    // chips provide enough overlap.
    sim::Simulator sim;
    Geometry geo = Geometry::tiny();
    geo.buses = 1;
    geo.chipsPerBus = 16;
    Timing timing = Timing::fast();
    NandArray nand(sim, geo, timing);
    const int reads = 256;
    int done = 0;
    Tick last = 0;
    for (int i = 0; i < reads; ++i) {
        Address a{0, std::uint32_t(i % geo.chipsPerBus),
                  std::uint32_t((i / geo.chipsPerBus) % 8),
                  std::uint32_t(i % 16)};
        nand.read(a, [&](ReadResult) {
            ++done;
            last = sim.now();
        });
    }
    sim.run();
    ASSERT_EQ(done, reads);
    std::uint64_t wire_bytes = std::uint64_t(reads) *
        (geo.pageSize + flash::Secded72::checkBytes(geo.pageSize));
    double rate = sim::bytesPerSec(wire_bytes, last);
    EXPECT_GT(rate, timing.busBytesPerSec * 0.9);
}

TEST(NandArray, TooFewChipsCannotSaturateBus)
{
    // Counter-property: with 2 chips and tR >> transfer, the bus
    // cannot be kept busy; achieved rate is chip-limited.
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    const int reads = 64;
    int done = 0;
    Tick last = 0;
    for (int i = 0; i < reads; ++i) {
        Address a{0, std::uint32_t(i % f.geo.chipsPerBus),
                  std::uint32_t(i / 16), std::uint32_t(i % 16)};
        nand.read(a, [&](ReadResult) {
            ++done;
            last = f.sim.now();
        });
    }
    f.sim.run();
    ASSERT_EQ(done, reads);
    std::uint64_t wire = f.geo.pageSize +
        flash::Secded72::checkBytes(f.geo.pageSize);
    double rate = sim::bytesPerSec(std::uint64_t(reads) * wire, last);
    // Chip-limited bound: chips * wire / tR.
    double chip_bound = 2.0 * static_cast<double>(wire) /
        sim::ticksToSec(f.timing.readUs);
    EXPECT_LT(rate, chip_bound * 1.05);
    EXPECT_GT(rate, chip_bound * 0.85);
}

TEST(NandArray, ErrorInjectionGetsCorrected)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing, 77);
    // ~1e-5 BER over (512+64)*8 = 4608 bits => ~0.046 flips/page;
    // over 2000 reads expect ~90 corrected pages, ~0 uncorrectable.
    nand.setBitErrorRate(1e-5);
    int corrected_pages = 0, uncorrectable = 0, clean = 0;
    for (int i = 0; i < 2000; ++i) {
        Address a = Address::fromLinear(
            f.geo, std::uint64_t(i) % f.geo.pages());
        nand.read(a, [&](ReadResult res) {
            switch (res.status) {
              case Status::Ok: ++clean; break;
              case Status::Corrected: ++corrected_pages; break;
              case Status::Uncorrectable: ++uncorrectable; break;
              default: FAIL();
            }
        });
    }
    f.sim.run();
    EXPECT_GT(corrected_pages, 20);
    // A page may hold several corrected bits (one per word), so the
    // bit count dominates the page count.
    EXPECT_GE(static_cast<int>(nand.bitsCorrected()),
              corrected_pages);
    EXPECT_LE(uncorrectable, 2);
    EXPECT_GT(clean, 1000);
}

TEST(NandArray, CorrectedDataMatchesOriginal)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing, 33);
    PageBuffer data(f.geo.pageSize, 0x5a);
    nand.write(Address{0, 0, 0, 0}, data, [](Status) {});
    f.sim.run();

    nand.setBitErrorRate(5e-5);
    int checked = 0;
    for (int i = 0; i < 200; ++i) {
        nand.read(Address{0, 0, 0, 0}, [&](ReadResult res) {
            if (res.status != Status::Uncorrectable) {
                EXPECT_EQ(res.data, data);
                ++checked;
            }
        });
        f.sim.run();
    }
    EXPECT_GT(checked, 150);
}

TEST(NandArray, AlwaysDecodeVerifiesCleanPages)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    nand.setAlwaysDecode(true);
    Status st = Status::Uncorrectable;
    nand.read(Address{0, 0, 0, 0},
              [&](ReadResult res) { st = res.status; });
    f.sim.run();
    EXPECT_EQ(st, Status::Ok);
    EXPECT_EQ(nand.bitsCorrected(), 0u);
}

// ---------------------------------------------------------------- //
// Stale-sense ordering and error-injection fidelity
// ---------------------------------------------------------------- //

TEST(NandArray, ReadBehindProgramToSamePageSeesNewBytes)
{
    // Regression: the read used to snapshot page contents at ISSUE
    // time; queued behind an in-flight program to the same page, it
    // returned pre-program bytes even though its sense was ordered
    // after the program completed. With suspension disabled the
    // read queues FIFO behind the program -- exactly the buggy
    // schedule -- and must observe the programmed data.
    Fixture f;
    f.timing.maxSuspendsPerOp = 0;
    NandArray nand(f.sim, f.geo, f.timing);
    const Address addr{0, 0, 0, 0};
    PageBuffer data(f.geo.pageSize, 0x7e);
    nand.write(addr, data, [](Status st) {
        EXPECT_EQ(st, Status::Ok);
    });
    // Mid-program: the chip is busy; the read's sense lands after
    // the program's array time ends.
    PageBuffer got;
    f.sim.scheduleAt(f.timing.programUs / 2, [&]() {
        ASSERT_GT(nand.chipBusyUntil(0, 0), f.sim.now());
        nand.read(addr,
                  [&](ReadResult res) { got = std::move(res.data); });
    });
    f.sim.run();
    EXPECT_EQ(got, data);
}

TEST(NandArray, SuspendedReadObservesPreProgramBytes)
{
    // The flip side: a read that SUSPENDS the program senses before
    // the cells were programmed, so it returns the old contents --
    // physically what a real suspended program yields.
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    const Address addr{0, 0, 0, 0};
    PageBuffer before = nand.store().read(addr);
    PageBuffer data(f.geo.pageSize, 0x7e);
    nand.write(addr, data, [](Status) {});
    PageBuffer got;
    f.sim.scheduleAt(f.timing.programUs / 2, [&]() {
        nand.read(addr,
                  [&](ReadResult res) { got = std::move(res.data); });
    });
    f.sim.run();
    EXPECT_EQ(nand.suspendedPrograms(), 1u);
    EXPECT_EQ(got, before);
    // The program itself still completed with the new bytes.
    EXPECT_EQ(nand.store().read(addr), data);
}

TEST(NandArray, HighBerInjectsFullPoissonTail)
{
    // The injector used to cap flips at 64 per page, silently
    // truncating the Poisson tail at stress BERs. At 2e-2 the page
    // expects (512 + 64) * 8 * 0.02 = ~92 flips -- past the old cap
    // -- and the injected-bit stat must average accordingly.
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing, 123);
    nand.setBitErrorRate(2e-2);
    const int reads = 200;
    int done = 0;
    for (int i = 0; i < reads; ++i) {
        Address a = Address::fromLinear(
            f.geo, std::uint64_t(i) % f.geo.pages());
        nand.read(a, [&](ReadResult) { ++done; });
    }
    f.sim.run();
    ASSERT_EQ(done, reads);
    double mean = double(nand.bitsInjected()) / reads;
    EXPECT_GT(mean, 80.0);
    EXPECT_LT(mean, 105.0);
}

TEST(NandArrayDeath, BerBeyondModelRangePanics)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    nand.setBitErrorRate(0.5);
    nand.read(Address{0, 0, 0, 0}, [](ReadResult) {});
    EXPECT_DEATH(f.sim.run(), "outside the error model");
}

// ---------------------------------------------------------------- //
// Program/erase suspend-resume
// ---------------------------------------------------------------- //

TEST(NandArray, ReadSuspendsProgramAndBothAccountExactly)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    const Tick wire = wireTime(f.geo, f.timing);
    Tick write_done = 0, read_done = 0;
    nand.write(Address{0, 0, 0, 0}, PageBuffer(f.geo.pageSize, 1),
               [&](Status st) {
        EXPECT_EQ(st, Status::Ok);
        write_done = f.sim.now();
    });
    const Tick issue = wire + f.timing.programUs / 2;
    f.sim.scheduleAt(issue, [&]() {
        nand.read(Address{0, 0, 0, 1},
                  [&](ReadResult) { read_done = f.sim.now(); });
    });
    f.sim.run();
    // The read pays suspend latency + its own sense + wire + pipe.
    EXPECT_EQ(read_done, issue + f.timing.suspendUs +
                  f.timing.readUs + wire +
                  f.timing.controllerOverhead);
    // The program pays exactly the inserted delay on top of its
    // undisturbed completion: total program time never shrinks.
    const Tick inserted = f.timing.suspendUs + f.timing.readUs +
        f.timing.resumeUs;
    EXPECT_EQ(write_done, wire + f.timing.programUs + inserted +
                  f.timing.controllerOverhead);
    EXPECT_EQ(nand.suspendedPrograms(), 1u);
    EXPECT_EQ(nand.resumedPrograms(), 1u);
}

TEST(NandArray, BackgroundReadNeverSuspends)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    const Tick wire = wireTime(f.geo, f.timing);
    nand.write(Address{0, 0, 0, 0}, PageBuffer(f.geo.pageSize, 1),
               [](Status) {});
    Tick read_done = 0;
    const Tick issue = wire + f.timing.programUs / 2;
    f.sim.scheduleAt(issue, [&]() {
        nand.read(Address{0, 0, 0, 1},
                  [&](ReadResult) { read_done = f.sim.now(); },
                  flash::Priority::Background);
    });
    f.sim.run();
    // FIFO: the sense waits out the program.
    EXPECT_EQ(read_done, wire + f.timing.programUs +
                  f.timing.readUs + wire +
                  f.timing.controllerOverhead);
    EXPECT_EQ(nand.suspendedPrograms(), 0u);
    EXPECT_EQ(nand.backgroundReads(), 1u);
}

TEST(NandArray, SuspendBudgetExhaustionFallsBackToFifo)
{
    Fixture f;
    f.timing.maxSuspendsPerOp = 1;
    NandArray nand(f.sim, f.geo, f.timing);
    const Tick wire = wireTime(f.geo, f.timing);
    Tick write_done = 0;
    nand.write(Address{0, 0, 0, 0}, PageBuffer(f.geo.pageSize, 1),
               [&](Status) { write_done = f.sim.now(); });
    Tick read1_done = 0, read2_done = 0;
    const Tick issue = wire + f.timing.programUs / 4;
    f.sim.scheduleAt(issue, [&]() {
        nand.read(Address{0, 0, 0, 1},
                  [&](ReadResult) { read1_done = f.sim.now(); });
        // Second read while the window is open: the program's
        // budget (1) is spent, so it queues FIFO behind the
        // resumed program.
        nand.read(Address{0, 0, 0, 2},
                  [&](ReadResult) { read2_done = f.sim.now(); });
    });
    f.sim.run();
    EXPECT_EQ(nand.suspendedPrograms(), 1u);
    EXPECT_LT(read1_done, write_done);
    // The second read completes only after the resumed program's
    // array work ended (write_done includes the controller pipe).
    EXPECT_GT(read2_done, write_done - f.timing.controllerOverhead);
}

TEST(NandArray, CoalescedWindowSuspendsAsUnit)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    const Tick wire = wireTime(f.geo, f.timing);
    // Two grouped writes share a program window on one chip.
    std::vector<Tick> write_done;
    for (unsigned i = 0; i < 2; ++i) {
        nand.write(Address{0, 0, 0, i},
                   PageBuffer(f.geo.pageSize, std::uint8_t(i + 1)),
                   [&](Status st) {
            EXPECT_EQ(st, Status::Ok);
            write_done.push_back(f.sim.now());
        },
                   7);
    }
    Tick read_done = 0;
    const Tick issue = 2 * wire + f.timing.programUs / 2;
    f.sim.scheduleAt(issue, [&]() {
        nand.read(Address{0, 0, 0, 3},
                  [&](ReadResult) { read_done = f.sim.now(); });
    });
    f.sim.run();
    ASSERT_EQ(write_done.size(), 2u);
    EXPECT_EQ(nand.coalescedPrograms(), 1u);
    EXPECT_EQ(nand.suspendedPrograms(), 1u);
    EXPECT_EQ(nand.resumedPrograms(), 1u);
    const Tick inserted = f.timing.suspendUs + f.timing.readUs +
        f.timing.resumeUs;
    // Both window pages shift by exactly the one inserted delay:
    // the window parks and resumes as a unit, and each page still
    // pays its full tPROG from data arrival.
    EXPECT_EQ(write_done[0], wire + f.timing.programUs + inserted +
                  f.timing.controllerOverhead);
    EXPECT_EQ(write_done[1], 2 * wire + f.timing.programUs +
                  inserted + f.timing.controllerOverhead);
    EXPECT_LT(read_done, write_done[0]);
    // Data landed despite the shared, suspended window.
    for (unsigned i = 0; i < 2; ++i)
        EXPECT_EQ(nand.store().read(Address{0, 0, 0, i}),
                  PageBuffer(f.geo.pageSize, std::uint8_t(i + 1)));
}

TEST(NandArray, EraseSuspension)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    nand.write(Address{0, 0, 2, 0}, PageBuffer(f.geo.pageSize, 1),
               [](Status) {});
    f.sim.run();
    Tick base = f.sim.now();
    Tick erase_done = 0, read_done = 0;
    nand.erase(Address{0, 0, 2, 0}, [&](Status st) {
        EXPECT_EQ(st, Status::Ok);
        erase_done = f.sim.now();
    });
    const Tick issue = base + f.timing.eraseUs / 2;
    f.sim.scheduleAt(issue, [&]() {
        nand.read(Address{0, 0, 0, 0},
                  [&](ReadResult) { read_done = f.sim.now(); });
    });
    f.sim.run();
    const Tick inserted = f.timing.suspendUs + f.timing.readUs +
        f.timing.resumeUs;
    EXPECT_EQ(erase_done, base + f.timing.eraseUs + inserted +
                  f.timing.controllerOverhead);
    EXPECT_EQ(read_done, issue + f.timing.suspendUs +
                  f.timing.readUs + wireTime(f.geo, f.timing) +
                  f.timing.controllerOverhead);
    EXPECT_EQ(nand.suspendedErases(), 1u);
    EXPECT_EQ(nand.resumedErases(), 1u);
    EXPECT_EQ(nand.suspendedPrograms(), 0u);
    EXPECT_EQ(nand.backgroundErases(), 1u);
    EXPECT_FALSE(nand.store().isProgrammed(Address{0, 0, 2, 0}));
}

TEST(NandArray, PriorityReadJumpsQueuedProgram)
{
    // A read arriving while a SENSE runs cannot suspend it, but a
    // program queued behind that sense has not started: the read
    // inserts before it (queue reordering, no suspend penalty) and
    // the program is displaced by one sense, charged against the
    // same yield budget.
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    const Tick wire = wireTime(f.geo, f.timing);
    Tick read0_done = 0, write_done = 0, read1_done = 0;
    nand.read(Address{0, 0, 0, 0},
              [&](ReadResult) { read0_done = f.sim.now(); });
    nand.write(Address{0, 0, 0, 1}, PageBuffer(f.geo.pageSize, 1),
               [&](Status) { write_done = f.sim.now(); });
    // During the running sense, with the program queued behind it.
    f.sim.scheduleAt(f.timing.readUs / 2, [&]() {
        nand.read(Address{0, 0, 0, 2},
                  [&](ReadResult) { read1_done = f.sim.now(); });
    });
    f.sim.run();
    EXPECT_EQ(nand.displacedPrograms(), 1u);
    EXPECT_EQ(nand.suspendedPrograms(), 0u);
    // The priority read senses right after the running sense,
    // before the program.
    EXPECT_EQ(read1_done, 2 * f.timing.readUs + wire +
                  f.timing.controllerOverhead);
    // The program starts one sense later than it would have.
    EXPECT_EQ(write_done, 2 * f.timing.readUs + f.timing.programUs +
                  f.timing.controllerOverhead);
    EXPECT_LT(read0_done, read1_done);
}

TEST(NandArray, BusBusyUntilTracksCurrentTransfer)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    EXPECT_EQ(nand.busBusyUntil(0), 0u);
    nand.read(Address{0, 0, 0, 0}, [](ReadResult) {});
    f.sim.runUntil(f.timing.readUs);
    EXPECT_EQ(nand.queuedTransfers(0), 0u);
    f.sim.run();
    // The last transfer's end is still recorded.
    EXPECT_EQ(nand.busBusyUntil(0),
              f.timing.readUs + wireTime(f.geo, f.timing));
}

TEST(NandArray, PartialReadOutTransfersOnlyCoveredWords)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    PageBuffer data(f.geo.pageSize);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7 + 3);
    nand.write(Address{0, 0, 0, 0}, data, [](Status) {});
    f.sim.run();

    // An unaligned 100-byte range: data must match exactly and the
    // completion must only pay the covered words' wire time.
    const std::uint32_t off = 13, len = 100;
    Tick start = f.sim.now();
    Tick done_at = 0;
    PageBuffer got;
    nand.read(Address{0, 0, 0, 0},
              [&](ReadResult res) {
        got = std::move(res.data);
        done_at = f.sim.now();
    },
              flash::Priority::Read, off, len);
    f.sim.run();
    ASSERT_EQ(got.size(), len);
    EXPECT_TRUE(std::equal(got.begin(), got.end(),
                           data.begin() + off));
    std::uint32_t words = (off + len + 7) / 8 - off / 8;
    Tick wire = sim::transferTicks(words * 9ull,
                                   f.timing.busBytesPerSec);
    EXPECT_EQ(done_at - start, f.timing.readUs + wire +
                  f.timing.controllerOverhead);
}

// ---------------------------------------------------------------- //
// Wear-driven bit errors
// ---------------------------------------------------------------- //

TEST(NandArray, WearModelFollowsEraseCountCurve)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing);
    const Address a{0, 0, 0, 0};
    // Off by default: fresh-flash figures are untouched.
    EXPECT_EQ(nand.effectiveBitErrorRate(a), 0.0);

    nand.setBitErrorRate(1e-6);
    nand.setWearModel(2e-5, 1000, 2.5);
    // At zero erases the wear term is exactly ber0 ...
    EXPECT_DOUBLE_EQ(nand.effectiveBitErrorRate(a), 1e-6 + 2e-5);
    // ... at the knee it doubles ...
    nand.store().addWear(a, 1000);
    EXPECT_DOUBLE_EQ(nand.effectiveBitErrorRate(a),
                     1e-6 + 2 * 2e-5);
    // ... and past it the power law dominates.
    nand.store().addWear(a, 1400);
    EXPECT_DOUBLE_EQ(nand.effectiveBitErrorRate(a),
                     1e-6 + 2e-5 * (1.0 + std::pow(2.4, 2.5)));
    // Wear is per block: a neighbor of the same chip is unaged.
    EXPECT_DOUBLE_EQ(nand.effectiveBitErrorRate(Address{0, 0, 1, 0}),
                     1e-6 + 2e-5);
}

TEST(NandArray, WearRaisesDecodeFailuresMonotonically)
{
    // SECDED oracle: at each wear level the decoder's verdicts are
    // the ground truth, and non-Ok verdicts (Corrected +
    // Uncorrectable) must climb with the raw BER the wear curve
    // injects. Expected flips/page at 4608 wire bits: fresh
    // ~0.09, knee ~0.18, 2600 erases ~1.1.
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing, 11);
    nand.setWearModel(2e-5, 1000, 2.5);
    const Address fresh{0, 0, 0, 0};
    const Address knee{0, 0, 1, 0};
    const Address aged{0, 0, 2, 0};
    nand.store().addWear(knee, 1000);
    nand.store().addWear(aged, 2600);

    auto decode_errors = [&](const Address &blk) {
        int errs = 0;
        const int reads = 400;
        for (int i = 0; i < reads; ++i) {
            Address p = blk;
            p.page = std::uint32_t(i) % f.geo.pagesPerBlock;
            nand.read(p, [&](ReadResult res) {
                if (res.status != Status::Ok)
                    ++errs;
            });
        }
        f.sim.run();
        return errs;
    };
    int e_fresh = decode_errors(fresh);
    int e_knee = decode_errors(knee);
    int e_aged = decode_errors(aged);
    EXPECT_LT(e_fresh, e_knee);
    EXPECT_LT(e_knee, e_aged);
    // The aged block is past the ECC's comfort zone: a solid
    // majority of its pages take at least one flip per sense.
    EXPECT_GT(e_aged, 150);
}

TEST(NandArray, PartialReadOutSurvivesErrorInjection)
{
    Fixture f;
    NandArray nand(f.sim, f.geo, f.timing, 55);
    PageBuffer data(f.geo.pageSize, 0xc3);
    nand.write(Address{0, 0, 0, 0}, data, [](Status) {});
    f.sim.run();
    nand.setBitErrorRate(5e-5);
    int checked = 0;
    for (int i = 0; i < 100; ++i) {
        nand.read(Address{0, 0, 0, 0},
                  [&](ReadResult res) {
            if (res.status != Status::Uncorrectable) {
                ASSERT_EQ(res.data.size(), 64u);
                EXPECT_EQ(res.data, PageBuffer(64, 0xc3));
                ++checked;
            }
        },
                  flash::Priority::Read, 128, 64);
        f.sim.run();
    }
    EXPECT_GT(checked, 80);
}
