/**
 * @file
 * Cluster-scale regression: the ROADMAP's 20-node target. Builds
 * fan-out-8 wirings (every serial port in use, paper figure 5) with
 * the Topology builders, validates them, and routes cross-node KV
 * traffic through the 20-node ring the paper describes (4 lanes
 * each way = 32.8 Gb/s of ring throughput, section 3.2).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/cluster.hh"
#include "net/network.hh"
#include "kv/kv_router.hh"
#include "kv/kv_service.hh"
#include "sim/simulator.hh"
#include "workload/workload.hh"

using namespace bluedbm;
using flash::PageBuffer;
using kv::Key;
using kv::KvStatus;

namespace {

/** The paper's 20-node ring: 4 lanes each way fills all 8 ports. */
core::ClusterParams
ring20Cluster()
{
    core::ClusterParams p;
    p.topology = net::Topology::ring(20, 4);
    p.node.geometry = flash::Geometry::tiny();
    p.node.timing = flash::Timing::fast();
    p.node.cards = 2;
    p.node.controllerTags = 64;
    p.network.endpoints = kv::kvRequiredEndpoints;
    return p;
}

} // namespace

TEST(ClusterScale, FanOut8WiringsValidate)
{
    // ring(20,4): every node consumes its full 8-port budget.
    net::Topology ring = net::Topology::ring(20, 4);
    EXPECT_EQ(ring.validate(), "");
    EXPECT_EQ(ring.nodes, 20u);
    EXPECT_EQ(ring.links.size(), 20u * 4);
    std::vector<unsigned> ports(20, 0);
    for (const auto &l : ring.links) {
        ++ports[l.nodeA];
        ++ports[l.nodeB];
    }
    for (unsigned n = 0; n < 20; ++n)
        EXPECT_EQ(ports[n], 8u) << "node " << n;

    // Distributed star with 3 hubs: hubs use the full fan-out of 8
    // (2 hub-to-hub cables + 6 leaf uplinks).
    net::Topology star = net::Topology::distributedStar(20, 3);
    EXPECT_EQ(star.validate(), "");
    std::vector<unsigned> sports(20, 0);
    for (const auto &l : star.links) {
        ++sports[l.nodeA];
        ++sports[l.nodeB];
    }
    EXPECT_EQ(*std::max_element(sports.begin(), sports.end()), 8u);

    // The round-trip through the config format preserves wiring.
    net::Topology back = net::Topology::fromConfig(ring.toConfig());
    EXPECT_EQ(back.validate(), "");
    EXPECT_EQ(back.links.size(), ring.links.size());
}

TEST(ClusterScale, Ring20RoutesAreShortAndLoopFree)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, ring20Cluster());
    auto &net = cluster.network();
    // Worst-case hop count on a 20-ring is 10; every endpoint's
    // deterministic route must respect it.
    for (net::NodeId src = 0; src < 20; ++src) {
        for (net::NodeId dst = 0; dst < 20; ++dst) {
            if (src == dst)
                continue;
            unsigned expect =
                std::min<unsigned>((dst + 20 - src) % 20,
                                   (src + 20 - dst) % 20);
            for (net::EndpointId e = 1; e < 4; ++e)
                EXPECT_EQ(net.routeHops(e, src, dst), expect)
                    << src << "->" << dst;
        }
    }
}

TEST(ClusterScale, KvTrafficCrossesThe20NodeRing)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, ring20Cluster());
    kv::KvParams kp;
    kp.replication = 2;
    kv::KvRouter router(sim, cluster, kp);

    // Load keys from origins all around the ring.
    const unsigned keys = 400;
    unsigned acks = 0;
    for (Key k = 0; k < keys; ++k) {
        router.put(net::NodeId(k % 20), k,
                   workload::WorkloadEngine::makeValue(k, 64),
                   [&](KvStatus st) {
            ASSERT_EQ(st, KvStatus::Ok);
            ++acks;
        });
    }
    sim.run();
    ASSERT_EQ(acks, keys);

    // Every node ended up owning a slice (consistent hashing over
    // 20 nodes x 64 vnodes leaves nobody empty at 800 replicas).
    for (unsigned n = 0; n < 20; ++n)
        EXPECT_GT(router.shard(net::NodeId(n)).keyCount(), 0u)
            << "node " << n;

    // Reads from the node most distant from the data still return
    // correct bytes, for every key, via the integrated network.
    unsigned gets = 0;
    for (Key k = 0; k < keys; ++k) {
        net::NodeId origin = net::NodeId((k + 10) % 20); // far away
        router.get(origin, k, [&, k](PageBuffer v, KvStatus st) {
            ASSERT_EQ(st, KvStatus::Ok);
            ASSERT_EQ(v, workload::WorkloadEngine::makeValue(k, 64));
            ++gets;
        });
    }
    sim.run();
    EXPECT_EQ(gets, keys);
    EXPECT_GT(router.remoteOps(), 0u);

    // Traffic really crossed serial lanes (no loopback shortcut).
    EXPECT_GT(cluster.network().totalLaneBytes(), 0u);
}

TEST(ClusterScale, WorkloadEngineDrives20Nodes)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, ring20Cluster());
    kv::KvRouter router(sim, cluster, kv::KvParams{});
    kv::KvService service(sim, router);

    workload::WorkloadParams wp;
    wp.keys = 500;
    wp.valueBytes = 64;
    wp.mix.readFrac = 0.95;
    wp.zipfian = true;
    wp.theta = 0.99;
    wp.clientsPerNode = 2;
    wp.pipeline = 2;
    wp.totalOps = 3000;
    workload::WorkloadEngine engine(sim, cluster, router, service,
                                    wp);

    bool loaded = false;
    engine.preload([&]() { loaded = true; });
    sim.run();
    ASSERT_TRUE(loaded);
    bool finished = false;
    engine.run([&]() { finished = true; });
    sim.run();
    ASSERT_TRUE(finished);

    EXPECT_EQ(engine.completedOps(), 3000u);
    EXPECT_EQ(engine.notFoundOps(), 0u);
    EXPECT_GT(engine.throughputOpsPerSec(), 0.0);
    EXPECT_GT(engine.allLatency().p999(), 0u);
}

// ---------------------------------------------------------------- //
// The 100-node target (docs/kernel.md)
// ---------------------------------------------------------------- //

TEST(ClusterScale, Ring100RoutesAreShortCompactAndLoopFree)
{
    sim::Simulator sim;
    net::StorageNetwork net(sim, net::Topology::ring(100, 4),
                            net::StorageNetwork::Params{});
    // routeHops panics on a loop, so this also proves loop freedom.
    for (net::NodeId src = 0; src < 100; src += 7) {
        for (net::NodeId dst = 0; dst < 100; ++dst) {
            if (src == dst)
                continue;
            unsigned expect =
                std::min<unsigned>((dst + 100 - src) % 100,
                                   (src + 100 - dst) % 100);
            for (net::EndpointId e = 1; e < 3; ++e)
                EXPECT_EQ(net.routeHops(e, src, dst), expect)
                    << src << "->" << dst;
        }
    }
    // Next-hop tables stay compact at the target scale: one
    // RouteSlot per (src,dst) pair plus the shared ECMP candidate
    // pool, independent of the endpoint count (the old per-endpoint
    // tables were ~an order of magnitude above this bound).
    EXPECT_GT(net.routingTableBytes(), 0u);
    EXPECT_LT(net.routingTableBytes(), 300000u);
}

TEST(ClusterScale, EventSlabRecyclesAcross100NodeTraffic)
{
    // The kernel's zero-allocation invariant at the target scale:
    // stream enough cross-ring messages that executed events dwarf
    // the slab, and require the slot high-water mark to stay at the
    // peak-concurrency level rather than tracking the event count.
    sim::Simulator sim;
    net::StorageNetwork net(sim, net::Topology::ring(100, 4),
                            net::StorageNetwork::Params{});
    unsigned received = 0;
    for (net::NodeId nd = 0; nd < 100; ++nd) {
        net.endpoint(nd, 1).enableEndToEnd(8);
        net.endpoint(nd, 1).setReceiveHandler(
            [&received](net::Message) { ++received; });
    }
    const unsigned perNode = 40;
    for (unsigned i = 0; i < perNode; ++i)
        for (net::NodeId nd = 0; nd < 100; ++nd)
            net.endpoint(nd, 1).send((nd + 50) % 100, 256, {});
    sim.run();
    EXPECT_EQ(received, perNode * 100);
    EXPECT_GT(sim.eventsExecuted(), 100000u);
    EXPECT_LT(sim.eventPoolSlots(), sim.eventsExecuted() / 10);
}
