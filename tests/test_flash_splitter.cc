/**
 * @file
 * Tests for the flash interface splitter: tag renaming, port
 * isolation, and FIFO queueing when controller tags run out.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "flash/flash_card.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using flash::Address;
using flash::Command;
using flash::FlashCard;
using flash::Geometry;
using flash::Op;
using flash::PageBuffer;
using flash::Status;
using flash::Tag;
using flash::Timing;

namespace {

struct PortClient : flash::Client
{
    flash::FlashSplitter::Port *port = nullptr;
    std::vector<Tag> readTags;
    std::map<Tag, PageBuffer> writeData;
    std::vector<Tag> writeTags;
    std::vector<Tag> eraseTags;

    void
    readDone(Tag tag, PageBuffer, Status status) override
    {
        EXPECT_NE(status, Status::Uncorrectable);
        readTags.push_back(tag);
    }

    void
    writeDataRequest(Tag tag) override
    {
        auto it = writeData.find(tag);
        ASSERT_NE(it, writeData.end());
        port->sendWriteData(tag, std::move(it->second));
    }

    void
    writeDone(Tag tag, Status status) override
    {
        EXPECT_EQ(status, Status::Ok);
        writeTags.push_back(tag);
    }

    void
    eraseDone(Tag tag, Status) override
    {
        eraseTags.push_back(tag);
    }
};

} // namespace

TEST(FlashSplitter, TwoPortsShareOneController)
{
    sim::Simulator sim;
    FlashCard card(sim, Geometry::tiny(), Timing::fast(), 16);
    auto &p0 = card.splitter().addPort(4);
    auto &p1 = card.splitter().addPort(4);
    PortClient c0, c1;
    c0.port = &p0;
    c1.port = &p1;
    p0.setClient(&c0);
    p1.setClient(&c1);

    // Both ports use the *same local tags*; renaming keeps them apart.
    p0.sendCommand(Command{Op::ReadPage, Address{0, 0, 0, 0}, 0});
    p1.sendCommand(Command{Op::ReadPage, Address{1, 0, 0, 0}, 0});
    sim.run();
    ASSERT_EQ(c0.readTags.size(), 1u);
    ASSERT_EQ(c1.readTags.size(), 1u);
    EXPECT_EQ(c0.readTags[0], 0u);
    EXPECT_EQ(c1.readTags[0], 0u);
}

TEST(FlashSplitter, PortTagFreedAfterCompletion)
{
    sim::Simulator sim;
    FlashCard card(sim, Geometry::tiny(), Timing::fast(), 16);
    auto &p0 = card.splitter().addPort(2);
    PortClient c0;
    c0.port = &p0;
    p0.setClient(&c0);

    EXPECT_TRUE(p0.tagFree(1));
    p0.sendCommand(Command{Op::ReadPage, Address{0, 0, 0, 0}, 1});
    EXPECT_FALSE(p0.tagFree(1));
    sim.run();
    EXPECT_TRUE(p0.tagFree(1));
}

TEST(FlashSplitter, QueuesWhenControllerTagsExhausted)
{
    sim::Simulator sim;
    // Controller with only 2 hardware tags; port with 8 local tags.
    FlashCard card(sim, Geometry::tiny(), Timing::fast(), 2);
    auto &p0 = card.splitter().addPort(8);
    PortClient c0;
    c0.port = &p0;
    p0.setClient(&c0);

    for (Tag t = 0; t < 8; ++t) {
        Address a = Address::fromStriped(card.geometry(), t);
        p0.sendCommand(Command{Op::ReadPage, a, t});
    }
    sim.run();
    EXPECT_EQ(c0.readTags.size(), 8u);
    EXPECT_GT(card.splitter().queuedCommands(), 0u);
}

TEST(FlashSplitter, WriteDataRoutedThroughRenamedTag)
{
    sim::Simulator sim;
    FlashCard card(sim, Geometry::tiny(), Timing::fast(), 16);
    auto &p0 = card.splitter().addPort(4);
    auto &p1 = card.splitter().addPort(4);
    PortClient c0, c1;
    c0.port = &p0;
    c1.port = &p1;
    p0.setClient(&c0);
    p1.setClient(&c1);

    const auto page_size = card.geometry().pageSize;
    c0.writeData[2] = PageBuffer(page_size, 0x11);
    c1.writeData[2] = PageBuffer(page_size, 0x22);
    p0.sendCommand(Command{Op::WritePage, Address{0, 0, 0, 0}, 2});
    p1.sendCommand(Command{Op::WritePage, Address{0, 0, 1, 0}, 2});
    sim.run();
    ASSERT_EQ(c0.writeTags.size(), 1u);
    ASSERT_EQ(c1.writeTags.size(), 1u);

    // Each port's data went to its own address.
    EXPECT_EQ(card.nand().store().read(Address{0, 0, 0, 0}),
              PageBuffer(page_size, 0x11));
    EXPECT_EQ(card.nand().store().read(Address{0, 0, 1, 0}),
              PageBuffer(page_size, 0x22));
}

TEST(FlashSplitter, ManyPortsStressAllComplete)
{
    sim::Simulator sim;
    FlashCard card(sim, Geometry::tiny(), Timing::fast(), 8);
    constexpr int ports = 4, per_port = 16;
    std::vector<PortClient> clients(ports);
    std::vector<flash::FlashSplitter::Port *> port_ptrs;
    for (int p = 0; p < ports; ++p) {
        auto &port = card.splitter().addPort(per_port);
        clients[p].port = &port;
        port.setClient(&clients[p]);
        port_ptrs.push_back(&port);
    }
    for (int p = 0; p < ports; ++p) {
        for (Tag t = 0; t < per_port; ++t) {
            Address a = Address::fromStriped(
                card.geometry(),
                std::uint64_t(p) * per_port + t);
            port_ptrs[p]->sendCommand(Command{Op::ReadPage, a, t});
        }
    }
    sim.run();
    for (int p = 0; p < ports; ++p)
        EXPECT_EQ(clients[p].readTags.size(), size_t(per_port));
}

TEST(FlashSplitterDeath, BusyPortTagPanics)
{
    sim::Simulator sim;
    FlashCard card(sim, Geometry::tiny(), Timing::fast(), 16);
    auto &p0 = card.splitter().addPort(2);
    PortClient c0;
    c0.port = &p0;
    p0.setClient(&c0);
    p0.sendCommand(Command{Op::ReadPage, Address{0, 0, 0, 0}, 0});
    EXPECT_DEATH(
        p0.sendCommand(Command{Op::ReadPage, Address{0, 0, 0, 1}, 0}),
        "busy tag");
}
