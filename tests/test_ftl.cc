/**
 * @file
 * Tests for the page-mapping FTL: mapping, out-of-place updates,
 * garbage collection, wear leveling and a randomized torture test
 * against a reference map.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "flash/flash_card.hh"
#include "flash/flash_server.hh"
#include "ftl/ftl.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using flash::FlashCard;
using flash::FlashServer;
using flash::Geometry;
using flash::PageBuffer;
using flash::Timing;
using ftl::Ftl;
using ftl::FtlParams;

namespace {

struct Fixture
{
    sim::Simulator sim;
    Geometry geo = Geometry::tiny();
    FlashCard card{sim, geo, Timing::fast(), 64};
    flash::FlashSplitter::Port &port{card.splitter().addPort(64)};
    FlashServer server{sim, port, 1, 16};
    Ftl ftl{sim, server, 0, geo};

    PageBuffer
    pattern(std::uint32_t seed)
    {
        PageBuffer p(geo.pageSize);
        for (std::size_t i = 0; i < p.size(); ++i)
            p[i] = static_cast<std::uint8_t>(seed * 31 + i);
        return p;
    }

    void
    writeSync(std::uint64_t lpn, std::uint32_t seed)
    {
        bool ok = false, fired = false;
        ftl.write(lpn, pattern(seed), [&](bool o) {
            ok = o;
            fired = true;
        });
        sim.run();
        ASSERT_TRUE(fired);
        ASSERT_TRUE(ok);
    }

    PageBuffer
    readSync(std::uint64_t lpn)
    {
        PageBuffer out;
        ftl.read(lpn, [&](PageBuffer data, bool ok) {
            EXPECT_TRUE(ok);
            out = std::move(data);
        });
        sim.run();
        return out;
    }
};

} // namespace

TEST(Ftl, LogicalCapacityReflectsOverProvisioning)
{
    Fixture f;
    std::uint64_t phys = f.geo.pages();
    EXPECT_LT(f.ftl.logicalPages(), phys);
    EXPECT_GT(f.ftl.logicalPages(), phys / 2);
}

TEST(Ftl, UnwrittenPageReadsZeroes)
{
    Fixture f;
    EXPECT_FALSE(f.ftl.isMapped(7));
    PageBuffer data = f.readSync(7);
    EXPECT_EQ(data, PageBuffer(f.geo.pageSize, 0));
}

TEST(Ftl, WriteReadRoundTrip)
{
    Fixture f;
    f.writeSync(3, 42);
    EXPECT_TRUE(f.ftl.isMapped(3));
    EXPECT_EQ(f.readSync(3), f.pattern(42));
}

TEST(Ftl, OverwriteIsOutOfPlace)
{
    Fixture f;
    f.writeSync(5, 1);
    std::uint64_t writes_before = f.ftl.flashWrites();
    f.writeSync(5, 2);
    EXPECT_EQ(f.readSync(5), f.pattern(2));
    // Overwrite consumed a fresh flash page (no in-place update).
    EXPECT_EQ(f.ftl.flashWrites(), writes_before + 1);
}

TEST(Ftl, TrimUnmapsPage)
{
    Fixture f;
    f.writeSync(9, 9);
    bool fired = false;
    f.ftl.trim(9, [&](bool ok) {
        EXPECT_TRUE(ok);
        fired = true;
    });
    f.sim.run();
    ASSERT_TRUE(fired);
    EXPECT_FALSE(f.ftl.isMapped(9));
    EXPECT_EQ(f.readSync(9), PageBuffer(f.geo.pageSize, 0));
}

TEST(Ftl, SequentialFillWithinLogicalCapacity)
{
    Fixture f;
    std::uint64_t n = f.ftl.logicalPages() / 2;
    int done = 0;
    for (std::uint64_t lpn = 0; lpn < n; ++lpn)
        f.ftl.write(lpn, f.pattern(std::uint32_t(lpn)),
                    [&](bool ok) {
            EXPECT_TRUE(ok);
            ++done;
        });
    f.sim.run();
    EXPECT_EQ(done, int(n));
    for (std::uint64_t lpn = 0; lpn < n; lpn += n / 7 + 1)
        EXPECT_EQ(f.readSync(lpn), f.pattern(std::uint32_t(lpn)));
}

TEST(Ftl, GarbageCollectionReclaimsOverwrittenSpace)
{
    Fixture f;
    // Keep rewriting a small working set until total flash pages
    // written far exceed physical pages of free headroom: GC must
    // have run and the data must remain intact.
    const std::uint64_t hot = 8;
    const int rounds = 300;
    int done = 0;
    for (int r = 0; r < rounds; ++r) {
        for (std::uint64_t lpn = 0; lpn < hot; ++lpn) {
            f.ftl.write(lpn,
                        f.pattern(std::uint32_t(r * hot + lpn)),
                        [&](bool ok) {
                EXPECT_TRUE(ok);
                ++done;
            });
        }
        f.sim.run();
    }
    EXPECT_EQ(done, int(hot) * rounds);
    EXPECT_GT(f.ftl.gcRuns(), 0u);
    EXPECT_GT(f.ftl.erasedBlocks(), 0u);
    for (std::uint64_t lpn = 0; lpn < hot; ++lpn) {
        EXPECT_EQ(f.readSync(lpn),
                  f.pattern(std::uint32_t((rounds - 1) * hot + lpn)));
    }
}

TEST(Ftl, WriteAmplificationIsReasonable)
{
    Fixture f;
    const std::uint64_t hot = 16;
    for (int r = 0; r < 150; ++r) {
        for (std::uint64_t lpn = 0; lpn < hot; ++lpn)
            f.ftl.write(lpn, f.pattern(std::uint32_t(r)),
                        [](bool) {});
        f.sim.run();
    }
    // A hot working set far smaller than a block means GC victims are
    // mostly invalid: WAF should stay modest.
    EXPECT_LT(f.ftl.writeAmplification(), 1.6);
    EXPECT_GE(f.ftl.writeAmplification(), 1.0);
}

TEST(Ftl, RandomTortureMatchesReferenceMap)
{
    Fixture f;
    sim::Rng rng(99);
    std::map<std::uint64_t, std::uint32_t> reference;
    std::uint64_t space = f.ftl.logicalPages() / 4;
    for (int op = 0; op < 1500; ++op) {
        std::uint64_t lpn = rng.below(space);
        if (rng.chance(0.75)) {
            auto seed = static_cast<std::uint32_t>(rng.next());
            f.ftl.write(lpn, f.pattern(seed), [](bool ok) {
                EXPECT_TRUE(ok);
            });
            reference[lpn] = seed;
        } else {
            f.ftl.trim(lpn, [](bool) {});
            reference.erase(lpn);
        }
        if (op % 50 == 0)
            f.sim.run();
    }
    f.sim.run();
    for (const auto &[lpn, seed] : reference)
        EXPECT_EQ(f.readSync(lpn), f.pattern(seed)) << "lpn " << lpn;
    // Trimmed/never-written pages must read zero.
    for (std::uint64_t lpn = 0; lpn < space; lpn += space / 11 + 1) {
        if (!reference.count(lpn)) {
            EXPECT_EQ(f.readSync(lpn),
                      PageBuffer(f.geo.pageSize, 0));
        }
    }
}

TEST(Ftl, WearLevelingSpreadsErases)
{
    Fixture f;
    // Hammer a tiny hot set; wear-aware free-block selection should
    // keep the max erase count within a small factor of the mean.
    const std::uint64_t hot = 4;
    for (int r = 0; r < 400; ++r) {
        for (std::uint64_t lpn = 0; lpn < hot; ++lpn)
            f.ftl.write(lpn, f.pattern(std::uint32_t(r)),
                        [](bool) {});
        f.sim.run();
    }
    // Collect per-block erase counts from the store.
    std::uint64_t total = 0, max_count = 0, blocks = 0;
    for (std::uint32_t bus = 0; bus < f.geo.buses; ++bus) {
        for (std::uint32_t c = 0; c < f.geo.chipsPerBus; ++c) {
            for (std::uint32_t b = 0; b < f.geo.blocksPerChip; ++b) {
                flash::Address a{bus, c, b, 0};
                std::uint64_t e =
                    f.card.nand().store().eraseCount(a);
                total += e;
                max_count = std::max(max_count, e);
                ++blocks;
            }
        }
    }
    ASSERT_GT(total, 0u);
    double mean = double(total) / double(blocks);
    EXPECT_LT(double(max_count), mean * 4 + 3);
}
