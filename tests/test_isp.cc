/**
 * @file
 * Tests for the in-store processing engines: Morris-Pratt matching,
 * string search over the flash server, and the FIFO accelerator
 * scheduler.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analytics/text.hh"
#include "flash/flash_card.hh"
#include "flash/flash_server.hh"
#include "fs/log_fs.hh"
#include "isp/morris_pratt.hh"
#include "isp/scheduler.hh"
#include "isp/string_search.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using flash::FlashCard;
using flash::FlashServer;
using flash::Geometry;
using flash::Timing;
using isp::AcceleratorScheduler;
using isp::MpMatcher;
using isp::MpPattern;
using isp::SearchResult;
using isp::StringSearchEngine;

namespace {

std::vector<std::uint64_t>
naiveSearch(const std::vector<std::uint8_t> &hay,
            const std::string &needle)
{
    std::vector<std::uint64_t> out;
    if (needle.size() > hay.size())
        return out;
    for (std::size_t i = 0; i + needle.size() <= hay.size(); ++i) {
        if (std::equal(needle.begin(), needle.end(),
                       hay.begin() + long(i)))
            out.push_back(i);
    }
    return out;
}

std::vector<std::uint64_t>
mpSearch(const std::vector<std::uint8_t> &hay,
         const std::string &needle)
{
    MpPattern pattern(needle);
    MpMatcher matcher(pattern);
    std::vector<std::uint64_t> out;
    matcher.feed(hay.data(), hay.size(), 0, out);
    return out;
}

} // namespace

TEST(MorrisPratt, FailureFunctionKnownValues)
{
    MpPattern p("abcabd");
    std::vector<std::uint32_t> expect{0, 0, 0, 1, 2, 0};
    EXPECT_EQ(p.failure(), expect);

    MpPattern q("aaaa");
    std::vector<std::uint32_t> expect_q{0, 1, 2, 3};
    EXPECT_EQ(q.failure(), expect_q);
}

TEST(MorrisPratt, MatchesNaiveOnRandomText)
{
    sim::Rng rng(4);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::uint8_t> hay(2000);
        for (auto &b : hay)
            b = static_cast<std::uint8_t>('a' + rng.below(3));
        std::string needle;
        auto len = 1 + rng.below(6);
        for (std::uint64_t i = 0; i < len; ++i)
            needle.push_back(char('a' + rng.below(3)));
        EXPECT_EQ(mpSearch(hay, needle), naiveSearch(hay, needle))
            << "needle " << needle;
    }
}

TEST(MorrisPratt, OverlappingMatchesFound)
{
    std::vector<std::uint8_t> hay{'a', 'a', 'a', 'a', 'a'};
    auto matches = mpSearch(hay, "aa");
    EXPECT_EQ(matches,
              (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(MorrisPratt, StreamingAcrossChunksMatchesWhole)
{
    sim::Rng rng(6);
    std::vector<std::uint8_t> hay(5000);
    for (auto &b : hay)
        b = static_cast<std::uint8_t>('x' + rng.below(2));
    std::string needle = "xyxyx";

    MpPattern pattern(needle);
    MpMatcher matcher(pattern);
    std::vector<std::uint64_t> streamed;
    std::uint64_t pos = 0;
    std::size_t off = 0;
    while (off < hay.size()) {
        std::size_t chunk = std::min<std::size_t>(
            137, hay.size() - off);
        matcher.feed(hay.data() + off, chunk, pos, streamed);
        off += chunk;
        pos += chunk;
    }
    EXPECT_EQ(streamed, naiveSearch(hay, needle));
}

namespace {

struct SearchFixture
{
    sim::Simulator sim;
    Geometry geo = Geometry::tiny();
    FlashCard card{sim, geo, Timing::fast(), 128};
    flash::FlashSplitter::Port &port{card.splitter().addPort(64)};
    FlashServer server{sim, port, 4, 16};
    fs::LogFs fs{sim, server, 0, geo};
    StringSearchEngine engine{sim, server};

    SearchResult
    searchFile(const std::string &name, const std::string &needle)
    {
        fs.publishHandle(name, 1);
        SearchResult result;
        bool done = false;
        engine.search(1, fs.size(name), geo.pageSize, needle,
                      [&](SearchResult r) {
            result = std::move(r);
            done = true;
        });
        sim.run();
        EXPECT_TRUE(done);
        return result;
    }
};

} // namespace

TEST(StringSearch, FindsPlantedNeedlesExactly)
{
    SearchFixture f;
    auto corpus = analytics::makeCorpus(20000, "N33dle!", 12, 9);
    ASSERT_TRUE(f.fs.create("hay"));
    bool ok = false;
    f.fs.append("hay", corpus.text, [&](bool o) { ok = o; });
    f.sim.run();
    ASSERT_TRUE(ok);

    SearchResult res = f.searchFile("hay", "N33dle!");
    EXPECT_EQ(res.positions, corpus.needlePositions);
}

TEST(StringSearch, MatchSpanningPageBoundaryFound)
{
    SearchFixture f;
    // Build a haystack with the needle exactly straddling the first
    // page boundary.
    std::string needle = "BOUNDARY?";
    std::vector<std::uint8_t> hay(f.geo.pageSize * 2, 'q');
    std::uint64_t start = f.geo.pageSize - 4;
    std::copy(needle.begin(), needle.end(),
              hay.begin() + long(start));
    ASSERT_TRUE(f.fs.create("hay"));
    f.fs.append("hay", hay, [](bool) {});
    f.sim.run();

    SearchResult res = f.searchFile("hay", needle);
    ASSERT_EQ(res.positions.size(), 1u);
    EXPECT_EQ(res.positions[0], start);
}

TEST(StringSearch, MatchInSegmentOverlapNotDuplicated)
{
    SearchFixture f;
    // 4 interfaces split the file into segments; place needles near
    // every segment boundary and verify exact-once reporting.
    const std::uint64_t pages = 16;
    std::vector<std::uint8_t> hay(f.geo.pageSize * pages, 'm');
    std::string needle = "Edge#";
    std::uint64_t seg_bytes = (pages / 4) * f.geo.pageSize;
    std::vector<std::uint64_t> expect;
    for (int s = 1; s < 4; ++s) {
        std::uint64_t pos = s * seg_bytes - 2; // straddles boundary
        std::copy(needle.begin(), needle.end(),
                  hay.begin() + long(pos));
        expect.push_back(pos);
    }
    ASSERT_TRUE(f.fs.create("hay"));
    f.fs.append("hay", hay, [](bool) {});
    f.sim.run();

    SearchResult res = f.searchFile("hay", needle);
    EXPECT_EQ(res.positions, expect);
}

TEST(StringSearch, NoMatchesOnCleanHaystack)
{
    SearchFixture f;
    auto corpus = analytics::makeCorpus(8000, "Z!", 1, 11);
    // Remove the single needle by overwriting it.
    corpus.text[corpus.needlePositions[0]] = 'a';
    corpus.text[corpus.needlePositions[0] + 1] = 'b';
    ASSERT_TRUE(f.fs.create("hay"));
    f.fs.append("hay", corpus.text, [](bool) {});
    f.sim.run();
    SearchResult res = f.searchFile("hay", "Z!");
    EXPECT_TRUE(res.positions.empty());
    EXPECT_GE(res.bytesScanned, 8000u);
}

TEST(StringSearch, ScansAtFlashStreamBandwidth)
{
    SearchFixture f;
    const std::uint64_t bytes = f.geo.pageSize * 64;
    auto corpus = analytics::makeCorpus(bytes, "W0w!", 5, 13);
    ASSERT_TRUE(f.fs.create("hay"));
    f.fs.append("hay", corpus.text, [](bool) {});
    f.sim.run();

    sim::Tick start = f.sim.now();
    f.searchFile("hay", "W0w!");
    sim::Tick elapsed = f.sim.now() - start;
    double rate = sim::bytesPerSec(bytes, elapsed);
    // The tiny geometry is chip-limited: each chip delivers one wire
    // page (data + ECC bytes) per tR. The parallel engines must
    // reach a solid fraction of that ceiling.
    Timing t = Timing::fast();
    double wire_page = f.geo.pageSize +
        double(flash::Secded72::checkBytes(f.geo.pageSize));
    double chip_ceiling = double(f.geo.chips()) * wire_page /
        sim::ticksToSec(t.readUs);
    EXPECT_GT(rate, chip_ceiling * 0.6);
}

TEST(Scheduler, JobsRunFifoAcrossUnits)
{
    sim::Simulator sim;
    AcceleratorScheduler sched(sim, 2);
    std::vector<int> order;
    for (int i = 0; i < 6; ++i) {
        sched.submit([&order, i, &sim](unsigned,
                                       std::function<void()> rel) {
            order.push_back(i);
            sim.scheduleAfter(sim::usToTicks(10), rel);
        });
    }
    sim.run();
    ASSERT_EQ(order.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(order[i], i);
    EXPECT_EQ(sched.granted(), 6u);
    EXPECT_EQ(sched.freeUnits(), 2u);
}

TEST(Scheduler, ConcurrencyBoundedByUnits)
{
    sim::Simulator sim;
    AcceleratorScheduler sched(sim, 3);
    int running = 0, peak = 0;
    for (int i = 0; i < 10; ++i) {
        sched.submit([&](unsigned, std::function<void()> rel) {
            ++running;
            peak = std::max(peak, running);
            sim.scheduleAfter(sim::usToTicks(5), [&, rel]() {
                --running;
                rel();
            });
        });
    }
    sim.run();
    EXPECT_EQ(peak, 3);
    EXPECT_EQ(running, 0);
}

TEST(Scheduler, UnitsReusedAfterRelease)
{
    sim::Simulator sim;
    AcceleratorScheduler sched(sim, 1);
    std::vector<unsigned> units;
    for (int i = 0; i < 4; ++i) {
        sched.submit([&](unsigned u, std::function<void()> rel) {
            units.push_back(u);
            rel();
        });
    }
    sim.run();
    ASSERT_EQ(units.size(), 4u);
    for (unsigned u : units)
        EXPECT_EQ(u, 0u);
}
