/**
 * @file
 * Tests for the tag-based flash controller protocol.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "flash/flash_controller.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using flash::Address;
using flash::Command;
using flash::FlashController;
using flash::Geometry;
using flash::NandArray;
using flash::Op;
using flash::PageBuffer;
using flash::Status;
using flash::Tag;
using flash::Timing;

namespace {

/** Records completions; supplies write data on request. */
struct RecordingClient : flash::Client
{
    std::vector<std::pair<Tag, Status>> reads;
    std::vector<std::pair<Tag, Status>> writes;
    std::vector<std::pair<Tag, Status>> erases;
    std::vector<Tag> dataRequests;
    std::map<Tag, PageBuffer> dataToSend;
    FlashController *ctrl = nullptr;
    std::map<Tag, PageBuffer> readData;

    void
    readDone(Tag tag, PageBuffer data, Status status) override
    {
        reads.emplace_back(tag, status);
        readData[tag] = std::move(data);
    }

    void
    writeDataRequest(Tag tag) override
    {
        dataRequests.push_back(tag);
        auto it = dataToSend.find(tag);
        if (it != dataToSend.end() && ctrl)
            ctrl->sendWriteData(tag, std::move(it->second));
    }

    void
    writeDone(Tag tag, Status status) override
    {
        writes.emplace_back(tag, status);
    }

    void
    eraseDone(Tag tag, Status status) override
    {
        erases.emplace_back(tag, status);
    }
};

struct Fixture
{
    sim::Simulator sim;
    Geometry geo = Geometry::tiny();
    Timing timing = Timing::fast();
    NandArray nand{sim, geo, timing};
    FlashController ctrl{sim, nand, 16};
    RecordingClient client;

    Fixture()
    {
        client.ctrl = &ctrl;
        ctrl.setClient(&client);
    }
};

} // namespace

TEST(FlashController, ReadCompletesWithTag)
{
    Fixture f;
    f.ctrl.sendCommand(Command{Op::ReadPage, Address{0, 0, 0, 0}, 5});
    EXPECT_FALSE(f.ctrl.tagFree(5));
    f.sim.run();
    ASSERT_EQ(f.client.reads.size(), 1u);
    EXPECT_EQ(f.client.reads[0].first, 5u);
    EXPECT_EQ(f.client.reads[0].second, Status::Ok);
    EXPECT_TRUE(f.ctrl.tagFree(5));
    EXPECT_EQ(f.ctrl.readsIssued(), 1u);
}

TEST(FlashController, TagIsReusableAfterCompletion)
{
    Fixture f;
    f.ctrl.sendCommand(Command{Op::ReadPage, Address{0, 0, 0, 0}, 1});
    f.sim.run();
    f.ctrl.sendCommand(Command{Op::ReadPage, Address{0, 0, 0, 1}, 1});
    f.sim.run();
    EXPECT_EQ(f.client.reads.size(), 2u);
}

TEST(FlashController, WriteFlowDataRequestThenDone)
{
    Fixture f;
    f.client.dataToSend[3] = PageBuffer(f.geo.pageSize, 0xab);
    f.ctrl.sendCommand(Command{Op::WritePage, Address{0, 0, 0, 0}, 3});
    f.sim.run();
    ASSERT_EQ(f.client.dataRequests.size(), 1u);
    EXPECT_EQ(f.client.dataRequests[0], 3u);
    ASSERT_EQ(f.client.writes.size(), 1u);
    EXPECT_EQ(f.client.writes[0], std::make_pair(Tag(3), Status::Ok));

    // Verify the data landed.
    f.ctrl.sendCommand(Command{Op::ReadPage, Address{0, 0, 0, 0}, 3});
    f.sim.run();
    EXPECT_EQ(f.client.readData[3], PageBuffer(f.geo.pageSize, 0xab));
}

TEST(FlashController, EraseCompletes)
{
    Fixture f;
    f.ctrl.sendCommand(Command{Op::EraseBlock, Address{0, 0, 1, 0}, 7});
    f.sim.run();
    ASSERT_EQ(f.client.erases.size(), 1u);
    EXPECT_EQ(f.client.erases[0], std::make_pair(Tag(7), Status::Ok));
}

TEST(FlashController, ReadsReturnOutOfOrderAcrossBuses)
{
    Fixture f;
    // Tag 0 on a chip already busy with a long erase; tag 1 on an
    // idle bus. Tag 1 must complete first.
    f.ctrl.sendCommand(Command{Op::EraseBlock, Address{0, 0, 0, 0}, 9});
    f.ctrl.sendCommand(Command{Op::ReadPage, Address{0, 0, 1, 0}, 0});
    f.ctrl.sendCommand(Command{Op::ReadPage, Address{1, 0, 0, 0}, 1});
    f.sim.run();
    ASSERT_EQ(f.client.reads.size(), 2u);
    EXPECT_EQ(f.client.reads[0].first, 1u);
    EXPECT_EQ(f.client.reads[1].first, 0u);
}

TEST(FlashController, ManyOutstandingReadsAllComplete)
{
    Fixture f;
    for (Tag t = 0; t < 16; ++t) {
        Address a = Address::fromStriped(f.geo, t);
        f.ctrl.sendCommand(Command{Op::ReadPage, a, t});
    }
    f.sim.run();
    EXPECT_EQ(f.client.reads.size(), 16u);
    for (Tag t = 0; t < 16; ++t)
        EXPECT_TRUE(f.ctrl.tagFree(t));
}

TEST(FlashController, IllegalRewriteReportsStatus)
{
    Fixture f;
    f.client.dataToSend[0] = PageBuffer(f.geo.pageSize, 1);
    f.ctrl.sendCommand(Command{Op::WritePage, Address{0, 0, 0, 0}, 0});
    f.sim.run();
    f.client.dataToSend[0] = PageBuffer(f.geo.pageSize, 2);
    f.ctrl.sendCommand(Command{Op::WritePage, Address{0, 0, 0, 0}, 0});
    f.sim.run();
    ASSERT_EQ(f.client.writes.size(), 2u);
    EXPECT_EQ(f.client.writes[1].second, Status::IllegalWrite);
}

TEST(FlashControllerDeath, TagReusePanics)
{
    Fixture f;
    f.ctrl.sendCommand(Command{Op::ReadPage, Address{0, 0, 0, 0}, 2});
    EXPECT_DEATH(
        f.ctrl.sendCommand(Command{Op::ReadPage, Address{0, 0, 0, 1},
                                   2}),
        "reuses");
}

TEST(FlashControllerDeath, OutOfRangeTagPanics)
{
    Fixture f;
    EXPECT_DEATH(
        f.ctrl.sendCommand(Command{Op::ReadPage, Address{0, 0, 0, 0},
                                   99}),
        "out of range");
}
