/**
 * @file
 * Unit tests for the latency-insensitive bounded FIFO.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/fifo.hh"
#include "sim/simulator.hh"

using namespace bluedbm;

TEST(Fifo, PreservesFifoOrder)
{
    sim::Simulator s;
    sim::Fifo<int> f(s, 8);
    for (int i = 0; i < 5; ++i)
        f.push(i);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(f.pop(), i);
}

TEST(Fifo, CapacityAndSpace)
{
    sim::Simulator s;
    sim::Fifo<int> f(s, 3);
    EXPECT_EQ(f.capacity(), 3u);
    EXPECT_TRUE(f.canPush());
    f.push(1);
    f.push(2);
    EXPECT_EQ(f.space(), 1u);
    f.push(3);
    EXPECT_FALSE(f.canPush());
    EXPECT_EQ(f.size(), 3u);
}

TEST(Fifo, FrontPeeksWithoutRemoving)
{
    sim::Simulator s;
    sim::Fifo<std::string> f(s, 2);
    f.push("a");
    f.push("b");
    EXPECT_EQ(f.front(), "a");
    EXPECT_EQ(f.size(), 2u);
    EXPECT_EQ(f.pop(), "a");
    EXPECT_EQ(f.front(), "b");
}

TEST(Fifo, DataAvailableFiresOnEmptyToNonEmpty)
{
    sim::Simulator s;
    sim::Fifo<int> f(s, 4);
    int wakeups = 0;
    f.onDataAvailable([&] { ++wakeups; });

    f.push(1); // empty -> nonempty: fires
    f.push(2); // no transition
    s.run();
    EXPECT_EQ(wakeups, 1);

    f.pop();
    f.pop();
    f.push(3); // empty -> nonempty again
    s.run();
    EXPECT_EQ(wakeups, 2);
}

TEST(Fifo, SpaceAvailableFiresOnFullToNonFull)
{
    sim::Simulator s;
    sim::Fifo<int> f(s, 2);
    int wakeups = 0;
    f.onSpaceAvailable([&] { ++wakeups; });

    f.push(1);
    f.pop(); // never was full: no wakeup
    s.run();
    EXPECT_EQ(wakeups, 0);

    f.push(1);
    f.push(2); // full
    f.pop();   // full -> nonfull: fires
    s.run();
    EXPECT_EQ(wakeups, 1);
}

TEST(Fifo, ProducerConsumerPipeline)
{
    // A producer that pushes when space opens and a consumer that pops
    // when data arrives must move every element despite capacity 1.
    sim::Simulator s;
    sim::Fifo<int> f(s, 1);
    int next = 0;
    const int total = 100;
    std::vector<int> received;

    std::function<void()> produce = [&] {
        while (next < total && f.canPush())
            f.push(next++);
    };
    f.onSpaceAvailable([&] { produce(); });
    f.onDataAvailable([&] {
        while (f.canPop())
            received.push_back(f.pop());
    });

    produce();
    s.run();
    ASSERT_EQ(received.size(), size_t(total));
    for (int i = 0; i < total; ++i)
        EXPECT_EQ(received[i], i);
}

TEST(FifoDeath, PushWhenFullPanics)
{
    sim::Simulator s;
    sim::Fifo<int> f(s, 1);
    f.push(1);
    EXPECT_DEATH(f.push(2), "full");
}

TEST(FifoDeath, PopWhenEmptyPanics)
{
    sim::Simulator s;
    sim::Fifo<int> f(s, 1);
    EXPECT_DEATH(f.pop(), "empty");
}
