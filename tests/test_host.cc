/**
 * @file
 * Tests for the host interface: CPU model, PCIe caps, buffer pools
 * and DMA burst reordering.
 */

#include <gtest/gtest.h>

#include <vector>

#include "host/host_cpu.hh"
#include "host/page_buffers.hh"
#include "host/pcie.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using host::BufferPool;
using host::BurstDma;
using host::HostCpu;
using host::PcieLink;
using host::PcieParams;
using sim::Tick;

TEST(HostCpu, SingleSegmentTiming)
{
    sim::Simulator sim;
    HostCpu cpu(sim, 4);
    Tick done_at = 0;
    cpu.execute(sim::usToTicks(10), [&] { done_at = sim.now(); });
    sim.run();
    EXPECT_EQ(done_at, sim::usToTicks(10));
    EXPECT_EQ(cpu.busyTime(), sim::usToTicks(10));
}

TEST(HostCpu, SegmentsBeyondCoresQueue)
{
    sim::Simulator sim;
    HostCpu cpu(sim, 2);
    std::vector<Tick> done;
    for (int i = 0; i < 4; ++i)
        cpu.execute(sim::usToTicks(10),
                    [&] { done.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(done.size(), 4u);
    // Two run immediately, two queue behind them.
    EXPECT_EQ(done[0], sim::usToTicks(10));
    EXPECT_EQ(done[1], sim::usToTicks(10));
    EXPECT_EQ(done[2], sim::usToTicks(20));
    EXPECT_EQ(done[3], sim::usToTicks(20));
}

TEST(HostCpu, UtilizationAccounting)
{
    sim::Simulator sim;
    HostCpu cpu(sim, 4);
    // One core busy for 100 us while 3 idle: 25% utilization.
    cpu.execute(sim::usToTicks(100), [] {});
    sim.run();
    EXPECT_NEAR(cpu.utilization(), 0.25, 1e-9);
    cpu.resetAccounting();
    EXPECT_EQ(cpu.busyTime(), 0u);
}

TEST(Pcie, DeviceToHostCapIs1600MBps)
{
    sim::Simulator sim;
    PcieLink pcie(sim, PcieParams{});
    const int pages = 1000;
    Tick last = 0;
    int done = 0;
    for (int i = 0; i < pages; ++i) {
        pcie.deviceToHost(8192, [&] {
            ++done;
            last = sim.now();
        });
    }
    sim.run();
    ASSERT_EQ(done, pages);
    double rate = sim::bytesPerSec(8192ull * pages, last);
    EXPECT_NEAR(rate, 1.6e9, 1.6e9 * 0.02);
}

TEST(Pcie, HostToDeviceCapIs1000MBps)
{
    sim::Simulator sim;
    PcieLink pcie(sim, PcieParams{});
    const int pages = 1000;
    Tick last = 0;
    for (int i = 0; i < pages; ++i)
        pcie.hostToDevice(8192, [&] { last = sim.now(); });
    sim.run();
    double rate = sim::bytesPerSec(8192ull * pages, last);
    EXPECT_NEAR(rate, 1.0e9, 1.0e9 * 0.02);
}

TEST(Pcie, RpcAndInterruptLatencies)
{
    sim::Simulator sim;
    PcieParams p;
    PcieLink pcie(sim, p);
    Tick rpc_at = 0, irq_at = 0;
    pcie.rpc([&] { rpc_at = sim.now(); });
    pcie.interrupt([&] { irq_at = sim.now(); });
    sim.run();
    EXPECT_EQ(rpc_at, p.rpcLatency);
    EXPECT_EQ(irq_at, p.interruptLatency);
}

TEST(Pcie, DirectionsAreIndependent)
{
    sim::Simulator sim;
    PcieLink pcie(sim, PcieParams{});
    Tick up = 0, down = 0;
    pcie.deviceToHost(1 << 20, [&] { down = sim.now(); });
    pcie.hostToDevice(1 << 20, [&] { up = sim.now(); });
    sim.run();
    // Full duplex: neither waits for the other.
    EXPECT_LT(down, sim::msToTicks(1));
    EXPECT_LT(up, sim::msToTicks(2));
    EXPECT_EQ(pcie.devToHostBytes(), 1u << 20);
    EXPECT_EQ(pcie.hostToDevBytes(), 1u << 20);
}

TEST(BufferPool, AcquireReleaseCycle)
{
    BufferPool pool(4);
    EXPECT_EQ(pool.available(), 4u);
    std::vector<unsigned> got;
    for (int i = 0; i < 4; ++i)
        pool.acquire([&](unsigned idx) { got.push_back(idx); });
    EXPECT_EQ(got.size(), 4u);
    EXPECT_EQ(pool.available(), 0u);
    pool.release(got[0]);
    EXPECT_EQ(pool.available(), 1u);
}

TEST(BufferPool, WaitersServedOnRelease)
{
    BufferPool pool(1);
    unsigned first = 999, second = 999;
    pool.acquire([&](unsigned idx) { first = idx; });
    pool.acquire([&](unsigned idx) { second = idx; });
    EXPECT_EQ(first, 0u);
    EXPECT_EQ(second, 999u); // still waiting
    pool.release(first);
    EXPECT_EQ(second, 0u); // waiter got the freed buffer
}

TEST(BufferPool, BuffersAreDistinct)
{
    BufferPool pool(128);
    std::vector<bool> seen(128, false);
    for (int i = 0; i < 128; ++i) {
        pool.acquire([&](unsigned idx) {
            EXPECT_FALSE(seen[idx]);
            seen[idx] = true;
        });
    }
    EXPECT_EQ(pool.available(), 0u);
}

TEST(BurstDma, CompletesWhenAllDataArrived)
{
    sim::Simulator sim;
    PcieLink pcie(sim, PcieParams{});
    BurstDma dma(sim, pcie, 8192, 1024, true);
    bool done = false;
    dma.beginRead(0, [&] { done = true; });
    for (int i = 0; i < 8; ++i)
        dma.addData(0, 1024);
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(dma.openRequests(), 0u);
    EXPECT_EQ(pcie.devToHostBytes(), 8192u);
}

TEST(BurstDma, PartialTailBurstFlushes)
{
    sim::Simulator sim;
    PcieLink pcie(sim, PcieParams{});
    BurstDma dma(sim, pcie, 1000, 512, true);
    bool done = false;
    dma.beginRead(3, [&] { done = true; });
    dma.addData(3, 600);
    dma.addData(3, 400);
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(pcie.devToHostBytes(), 1000u);
}

TEST(BurstDma, InterleavedArrivalsBothComplete)
{
    sim::Simulator sim;
    PcieLink pcie(sim, PcieParams{});
    BurstDma dma(sim, pcie, 4096, 1024, true);
    int done = 0;
    dma.beginRead(0, [&] { ++done; });
    dma.beginRead(1, [&] { ++done; });
    // Interleave sub-burst chunks between the two buffers.
    for (int i = 0; i < 8; ++i) {
        dma.addData(0, 512);
        dma.addData(1, 512);
    }
    sim.run();
    EXPECT_EQ(done, 2);
}

TEST(BurstDma, PerBufferFifosAvoidHeadOfLineBlocking)
{
    // Buffer 0's data is delayed; buffer 1's data is all present.
    // With per-buffer FIFOs buffer 1 completes early; without, it
    // waits for buffer 0 (head of line).
    auto run_one = [](bool per_buffer) {
        sim::Simulator sim;
        PcieLink pcie(sim, PcieParams{});
        BurstDma dma(sim, pcie, 4096, 1024, per_buffer);
        Tick done1 = 0;
        dma.beginRead(0, [] {});
        dma.beginRead(1, [&] { done1 = sim.now(); });
        dma.addData(1, 4096); // buffer 1 fully ready at t=0
        // Buffer 0 data dribbles in late.
        sim.scheduleAt(sim::usToTicks(100), [&] {
            dma.addData(0, 4096);
        });
        sim.run();
        return done1;
    };
    Tick with_fifos = run_one(true);
    Tick without = run_one(false);
    EXPECT_LT(with_fifos, sim::usToTicks(10));
    EXPECT_GT(without, sim::usToTicks(100));
}
