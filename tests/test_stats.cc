/**
 * @file
 * Unit tests for counters, accumulators and histograms.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

using namespace bluedbm;

TEST(Accumulator, EmptyIsZero)
{
    sim::Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MeanMinMax)
{
    sim::Accumulator a;
    for (double v : {2.0, 4.0, 6.0})
        a.sample(v);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(Accumulator, StddevOfConstantIsZero)
{
    sim::Accumulator a;
    for (int i = 0; i < 10; ++i)
        a.sample(5.0);
    EXPECT_NEAR(a.stddev(), 0.0, 1e-9);
}

TEST(Accumulator, StddevKnownValue)
{
    sim::Accumulator a;
    // Population stddev of {1,2,3,4} is sqrt(1.25).
    for (double v : {1.0, 2.0, 3.0, 4.0})
        a.sample(v);
    EXPECT_NEAR(a.stddev(), std::sqrt(1.25), 1e-9);
}

TEST(Accumulator, ResetClearsState)
{
    sim::Accumulator a;
    a.sample(1.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(Histogram, BucketsSamplesCorrectly)
{
    sim::Histogram h(10.0, 5);
    h.sample(0.0);   // bucket 0
    h.sample(9.99);  // bucket 0
    h.sample(10.0);  // bucket 1
    h.sample(49.0);  // bucket 4
    h.sample(1000);  // overflow
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.buckets(), 6u);
}

TEST(Histogram, QuantileApproximation)
{
    sim::Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i) + 0.5);
    // Median should be near 50.
    EXPECT_NEAR(h.quantile(0.5), 51.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 91.0, 1.5);
}

TEST(Histogram, TracksUnderlyingAccumulator)
{
    sim::Histogram h(1.0, 4);
    h.sample(1.0);
    h.sample(3.0);
    EXPECT_EQ(h.acc().count(), 2u);
    EXPECT_DOUBLE_EQ(h.acc().mean(), 2.0);
}
