/**
 * @file
 * Unit tests for counters, accumulators and histograms.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/random.hh"
#include "sim/stats.hh"

using namespace bluedbm;

TEST(Accumulator, EmptyIsZero)
{
    sim::Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MeanMinMax)
{
    sim::Accumulator a;
    for (double v : {2.0, 4.0, 6.0})
        a.sample(v);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(Accumulator, StddevOfConstantIsZero)
{
    sim::Accumulator a;
    for (int i = 0; i < 10; ++i)
        a.sample(5.0);
    EXPECT_NEAR(a.stddev(), 0.0, 1e-9);
}

TEST(Accumulator, StddevKnownValue)
{
    sim::Accumulator a;
    // Population stddev of {1,2,3,4} is sqrt(1.25).
    for (double v : {1.0, 2.0, 3.0, 4.0})
        a.sample(v);
    EXPECT_NEAR(a.stddev(), std::sqrt(1.25), 1e-9);
}

TEST(Accumulator, ResetClearsState)
{
    sim::Accumulator a;
    a.sample(1.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(Histogram, BucketsSamplesCorrectly)
{
    sim::Histogram h(10.0, 5);
    h.sample(0.0);   // bucket 0
    h.sample(9.99);  // bucket 0
    h.sample(10.0);  // bucket 1
    h.sample(49.0);  // bucket 4
    h.sample(1000);  // overflow
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.buckets(), 6u);
}

TEST(Histogram, QuantileApproximation)
{
    sim::Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i) + 0.5);
    // Median should be near 50.
    EXPECT_NEAR(h.quantile(0.5), 51.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 91.0, 1.5);
}

TEST(Histogram, TracksUnderlyingAccumulator)
{
    sim::Histogram h(1.0, 4);
    h.sample(1.0);
    h.sample(3.0);
    EXPECT_EQ(h.acc().count(), 2u);
    EXPECT_DOUBLE_EQ(h.acc().mean(), 2.0);
}

namespace {

/** Exact quantile of a sorted sample vector (ceil-rank definition,
 * matching LatencyHistogram). */
std::uint64_t
oracleQuantile(std::vector<std::uint64_t> sorted, double q)
{
    auto n = sorted.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    return sorted[rank - 1];
}

void
expectCloseToOracle(const sim::LatencyHistogram &h,
                    std::vector<std::uint64_t> values, double q)
{
    std::sort(values.begin(), values.end());
    std::uint64_t exact = oracleQuantile(values, q);
    std::uint64_t approx = h.quantile(q);
    // One sub-bucket of slack: 1/128 relative plus the integer edge.
    double tol = static_cast<double>(exact) / 128.0 + 1.0;
    EXPECT_NEAR(static_cast<double>(approx),
                static_cast<double>(exact), tol)
        << "quantile " << q;
    // The reported value never undershoots the exact quantile: the
    // bucket's upper edge is at or above every sample in it.
    EXPECT_GE(approx, exact);
}

} // namespace

TEST(LatencyHistogram, EmptyIsZero)
{
    sim::LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(LatencyHistogram, SmallValuesAreExact)
{
    // Values below 128 land in unit-wide buckets: quantiles exact.
    sim::LatencyHistogram h;
    for (std::uint64_t v = 0; v < 100; ++v)
        h.record(v);
    EXPECT_EQ(h.quantile(0.5), 49u);
    EXPECT_EQ(h.quantile(0.99), 98u);
    EXPECT_EQ(h.quantile(1.0), 99u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 99u);
}

TEST(LatencyHistogram, PercentilesMatchSortedOracle)
{
    // Latency-shaped distribution: a tight body plus a long tail,
    // spanning five decades like ns-resolution tick values do.
    sim::Rng rng(42);
    sim::LatencyHistogram h;
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 200000; ++i) {
        std::uint64_t v = 100000 + rng.below(30000);
        if (rng.chance(0.02))
            v += rng.below(5000000); // tail
        values.push_back(v);
        h.record(v);
    }
    for (double q : {0.10, 0.50, 0.90, 0.95, 0.99, 0.999})
        expectCloseToOracle(h, values, q);
    EXPECT_EQ(h.quantile(1.0),
              *std::max_element(values.begin(), values.end()));
}

TEST(LatencyHistogram, RelativeErrorUnderOnePercent)
{
    // The contract the KV bench reporting leans on: any recorded
    // value comes back from quantile() within 1% of itself, across
    // the decades tick-denominated latencies span. (At 64
    // sub-buckets this failed: ~1.6% error quantized p99s of
    // adjacent bench scales into the same bucket edge.)
    for (std::uint64_t v = 300; v < (std::uint64_t(1) << 33);
         v = v * 3 + 17) {
        sim::LatencyHistogram h;
        h.record(v);
        // A far-away outlier keeps quantile() from clamping to the
        // exact max, so this probes the real bucket edge of v.
        h.record(v * 100);
        std::uint64_t got = h.quantile(0.5);
        EXPECT_GE(got, v);
        EXPECT_LE(static_cast<double>(got - v),
                  0.01 * static_cast<double>(v))
            << "value " << v;
    }
}

TEST(LatencyHistogram, AdjacentScalePercentilesDistinguishable)
{
    // Regression for the bench artifact where 8-node and 20-node
    // read p99s (981us-ish ticks ~0.5% apart) reported the identical
    // bucket edge: values half a percent apart must land in
    // different buckets anywhere in the latency range of interest.
    sim::LatencyHistogram a, b;
    std::uint64_t va = 981467, vb = 986606; // ~0.52% apart
    a.record(va);
    a.record(va * 100); // outlier defeats the exact-max clamp
    b.record(vb);
    b.record(vb * 100);
    EXPECT_NE(a.quantile(0.5), b.quantile(0.5));
}

TEST(LatencyHistogram, HugeValuesDoNotOverflow)
{
    sim::LatencyHistogram h;
    std::uint64_t huge = ~std::uint64_t(0);
    h.record(huge);
    h.record(1);
    EXPECT_EQ(h.max(), huge);
    EXPECT_EQ(h.quantile(1.0), huge);
    EXPECT_EQ(h.quantile(0.25), 1u);
}

TEST(LatencyHistogram, ResetClearsState)
{
    sim::LatencyHistogram h;
    h.record(1000);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    h.record(7);
    EXPECT_EQ(h.quantile(1.0), 7u);
}

TEST(LatencyHistogram, MergeMatchesSingleHistogramOracle)
{
    // Aggregation contract: merging per-client/per-stage histograms
    // must report exactly what one histogram fed every sample would
    // -- identical counts, extremes, mean and quantiles (bucket
    // geometry is shared, so merge is a lossless bucket-wise sum).
    sim::Rng rng(7);
    sim::LatencyHistogram parts[4];
    sim::LatencyHistogram all;
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 80000; ++i) {
        std::uint64_t v = 50000 + rng.below(20000);
        if (rng.chance(0.03))
            v += rng.below(3000000); // tail
        values.push_back(v);
        parts[i % 4].record(v);
        all.record(v);
    }
    sim::LatencyHistogram merged;
    for (const auto &p : parts)
        merged.merge(p);
    EXPECT_EQ(merged.count(), all.count());
    EXPECT_EQ(merged.min(), all.min());
    EXPECT_EQ(merged.max(), all.max());
    EXPECT_DOUBLE_EQ(merged.mean(), all.mean());
    for (double q : {0.10, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0}) {
        EXPECT_EQ(merged.quantile(q), all.quantile(q))
            << "quantile " << q;
        expectCloseToOracle(merged, values, q);
    }
}

TEST(LatencyHistogram, MergeIntoEmptyAndOfEmpty)
{
    sim::LatencyHistogram a, b;
    a.record(123);
    a.merge(b); // merging empty changes nothing
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.max(), 123u);
    b.merge(a); // merging into empty adopts everything
    EXPECT_EQ(b.count(), 1u);
    EXPECT_EQ(b.min(), 123u);
    EXPECT_EQ(b.quantile(1.0), 123u);
}

TEST(LatencyHistogram, SubtractRecoversPhaseDistribution)
{
    // Phase attribution contract: copy an always-on histogram at a
    // phase boundary, subtract the copy at the end, and the result
    // must match a histogram that saw only the phase's samples.
    sim::Rng rng(11);
    sim::LatencyHistogram h;
    sim::LatencyHistogram phaseOnly;
    for (int i = 0; i < 5000; ++i)
        h.record(1000 + rng.below(500)); // pre-phase traffic
    sim::LatencyHistogram before = h;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = 800000 + rng.below(400000);
        h.record(v);
        phaseOnly.record(v);
    }
    h.subtract(before);
    EXPECT_EQ(h.count(), phaseOnly.count());
    EXPECT_DOUBLE_EQ(h.mean(), phaseOnly.mean());
    for (double q : {0.50, 0.99})
        EXPECT_EQ(h.quantile(q), phaseOnly.quantile(q))
            << "quantile " << q;
}
