/**
 * @file
 * Unit and property tests for the SECDED Hamming(72,64) codec.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "flash/ecc.hh"
#include "sim/random.hh"

using namespace bluedbm;
using flash::EccResult;
using flash::Secded72;

namespace {

/** Flip bit @p pos of the 72-bit (word, check) pair. */
void
flipBit(std::uint64_t &word, std::uint8_t &check, unsigned pos)
{
    if (pos < 64)
        word ^= (1ull << pos);
    else
        check ^= static_cast<std::uint8_t>(1u << (pos - 64));
}

} // namespace

TEST(Ecc, CleanWordDecodesClean)
{
    sim::Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t w = rng.next();
        std::uint8_t c = Secded72::encodeWord(w);
        std::uint64_t w2 = w;
        EccResult r = Secded72::decodeWord(w2, c);
        EXPECT_EQ(r.correctedBits, 0u);
        EXPECT_FALSE(r.uncorrectable);
        EXPECT_EQ(w2, w);
    }
}

/** Property: every possible single-bit error is corrected. */
class EccSingleBit : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EccSingleBit, SingleBitErrorIsCorrected)
{
    unsigned pos = GetParam();
    sim::Rng rng(pos + 1);
    for (int trial = 0; trial < 20; ++trial) {
        std::uint64_t w = rng.next();
        std::uint8_t c = Secded72::encodeWord(w);
        std::uint64_t w2 = w;
        std::uint8_t c2 = c;
        flipBit(w2, c2, pos);
        EccResult r = Secded72::decodeWord(w2, c2);
        EXPECT_FALSE(r.uncorrectable) << "pos=" << pos;
        EXPECT_EQ(r.correctedBits, 1u) << "pos=" << pos;
        EXPECT_EQ(w2, w) << "data corrupted at pos=" << pos;
    }
}

INSTANTIATE_TEST_SUITE_P(AllPositions, EccSingleBit,
                         ::testing::Range(0u, 72u));

/** Property: double-bit errors are detected, never miscorrected. */
class EccDoubleBit
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(EccDoubleBit, DoubleBitErrorIsDetected)
{
    auto [p1, p2] = GetParam();
    if (p1 == p2)
        return;
    sim::Rng rng(p1 * 73 + p2);
    std::uint64_t w = rng.next();
    std::uint8_t c = Secded72::encodeWord(w);
    std::uint64_t w2 = w;
    std::uint8_t c2 = c;
    flipBit(w2, c2, p1);
    flipBit(w2, c2, p2);
    EccResult r = Secded72::decodeWord(w2, c2);
    EXPECT_TRUE(r.uncorrectable)
        << "p1=" << p1 << " p2=" << p2;
}

INSTANTIATE_TEST_SUITE_P(
    SampledPairs, EccDoubleBit,
    ::testing::Combine(::testing::Values(0u, 1u, 5u, 31u, 63u, 64u,
                                         70u, 71u),
                       ::testing::Values(2u, 3u, 17u, 40u, 62u, 65u,
                                         68u, 71u)));

TEST(Ecc, PageEncodeDecodeRoundTrip)
{
    sim::Rng rng(5);
    std::vector<std::uint8_t> page(8192);
    for (auto &b : page)
        b = static_cast<std::uint8_t>(rng.next());
    auto check = Secded72::encode(page);
    EXPECT_EQ(check.size(), 1024u);

    auto copy = page;
    EccResult r = Secded72::decode(copy, check);
    EXPECT_EQ(r.correctedBits, 0u);
    EXPECT_FALSE(r.uncorrectable);
    EXPECT_EQ(copy, page);
}

TEST(Ecc, PageScatteredSingleBitErrorsAllCorrected)
{
    sim::Rng rng(6);
    std::vector<std::uint8_t> page(4096);
    for (auto &b : page)
        b = static_cast<std::uint8_t>(rng.next());
    auto check = Secded72::encode(page);

    auto corrupted = page;
    // One bit flip in each of 10 distinct words: all correctable.
    for (int w = 0; w < 10; ++w) {
        std::size_t byte = std::size_t(w) * 8 + (rng.next() % 8);
        corrupted[byte] ^= static_cast<std::uint8_t>(
            1u << (rng.next() % 8));
    }
    EccResult r = Secded72::decode(corrupted, check);
    EXPECT_EQ(r.correctedBits, 10u);
    EXPECT_FALSE(r.uncorrectable);
    EXPECT_EQ(corrupted, page);
}

TEST(Ecc, PageDoubleErrorInOneWordIsUncorrectable)
{
    std::vector<std::uint8_t> page(512, 0xa5);
    auto check = Secded72::encode(page);
    auto corrupted = page;
    corrupted[0] ^= 0x03; // two bits in word 0
    EccResult r = Secded72::decode(corrupted, check);
    EXPECT_TRUE(r.uncorrectable);
}

TEST(Ecc, PartialTailWordIsProtected)
{
    // 12 bytes: one full word + 4 tail bytes.
    std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8,
                                   9, 10, 11, 12};
    auto check = Secded72::encode(data);
    EXPECT_EQ(check.size(), 2u);

    auto corrupted = data;
    corrupted[9] ^= 0x10;
    EccResult r = Secded72::decode(corrupted, check);
    EXPECT_EQ(r.correctedBits, 1u);
    EXPECT_FALSE(r.uncorrectable);
    EXPECT_EQ(corrupted, data);
}

TEST(Ecc, CheckBytesHelper)
{
    EXPECT_EQ(Secded72::checkBytes(8192), 1024u);
    EXPECT_EQ(Secded72::checkBytes(1), 1u);
    EXPECT_EQ(Secded72::checkBytes(0), 0u);
    EXPECT_EQ(Secded72::checkBytes(9), 2u);
}
