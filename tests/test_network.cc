/**
 * @file
 * Tests for the integrated storage network: latency, bandwidth,
 * ordering, routing determinism, flow control and backpressure.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "net/network.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using net::Endpoint;
using net::LaneParams;
using net::Message;
using net::NodeId;
using net::StorageNetwork;
using net::Topology;
using sim::Tick;

namespace {

StorageNetwork::Params
defaultParams()
{
    StorageNetwork::Params p;
    return p;
}

} // namespace

TEST(Network, SingleHopLatencyMatchesLinkParams)
{
    sim::Simulator sim;
    StorageNetwork net(sim, Topology::line(2), defaultParams());
    Tick arrival = 0;
    net.endpoint(1, 1).setReceiveHandler(
        [&](Message) { arrival = sim.now(); });
    net.endpoint(0, 1).send(1, 16, {});
    sim.run();
    const LaneParams &lp = net.laneParams();
    // 16-byte packet: serialization of ~20 wire bytes + hop latency.
    Tick serialization = sim::transferTicks(
        static_cast<std::uint64_t>(16 / lp.efficiency + 0.5),
        lp.physBytesPerSec);
    EXPECT_EQ(arrival, serialization + lp.hopLatency);
    EXPECT_LT(arrival, sim::usToTicks(0.6));
}

TEST(Network, MultiHopLatencyIsPerHopTimesHops)
{
    // Small packets over 1..4 hops of an idle line: latency must be
    // close to hops x 0.48 us (paper figure 11).
    for (unsigned hops = 1; hops <= 4; ++hops) {
        sim::Simulator sim;
        StorageNetwork net(sim, Topology::line(hops + 1),
                           defaultParams());
        Tick arrival = 0;
        net.endpoint(NodeId(hops), 1)
            .setReceiveHandler([&](Message) { arrival = sim.now(); });
        net.endpoint(0, 1).send(NodeId(hops), 16, {});
        sim.run();
        const LaneParams &lp = net.laneParams();
        double us = sim::ticksToUs(arrival);
        double per_hop = sim::ticksToUs(lp.hopLatency);
        EXPECT_NEAR(us, per_hop * hops, per_hop * 0.2 * hops)
            << hops << " hops";
    }
}

TEST(Network, StreamBandwidthReachesEffectiveRate)
{
    // A stream of messages across 3 hops must sustain the effective
    // (protocol-overhead-adjusted) rate of ~8.2 Gb/s.
    sim::Simulator sim;
    StorageNetwork net(sim, Topology::line(4), defaultParams());
    const std::uint32_t msg_bytes = 2048;
    const int messages = 2000;
    Tick last = 0;
    int got = 0;
    net.endpoint(3, 1).setReceiveHandler([&](Message) {
        ++got;
        last = sim.now();
    });
    for (int i = 0; i < messages; ++i)
        net.endpoint(0, 1).send(3, msg_bytes, {});
    sim.run();
    ASSERT_EQ(got, messages);
    double rate = sim::bytesPerSec(
        std::uint64_t(messages) * msg_bytes, last);
    double effective = net.laneParams().effectiveBytesPerSec();
    EXPECT_GT(rate, effective * 0.95);
    EXPECT_LE(rate, effective * 1.02);
}

TEST(Network, CutThroughBeatsStoreAndForward)
{
    // An 8 KB message over 3 hops should take roughly one
    // serialization plus 3 hop latencies, NOT 3 serializations.
    sim::Simulator sim;
    StorageNetwork net(sim, Topology::line(4), defaultParams());
    Tick arrival = 0;
    net.endpoint(3, 1).setReceiveHandler(
        [&](Message) { arrival = sim.now(); });
    net.endpoint(0, 1).send(3, 8192, {});
    sim.run();
    const LaneParams &lp = net.laneParams();
    Tick one_serialization = sim::transferTicks(
        static_cast<std::uint64_t>(8192 / lp.efficiency + 0.5),
        lp.physBytesPerSec);
    Tick cut_through = one_serialization + 3 * lp.hopLatency;
    Tick store_forward = 3 * (one_serialization + lp.hopLatency);
    EXPECT_LT(arrival, cut_through + one_serialization / 4);
    EXPECT_LT(arrival, store_forward / 2);
}

TEST(Network, PerEndpointFifoOrderProperty)
{
    // All packets of one endpoint to one destination take one path,
    // so arrival order equals send order (paper figure 6).
    sim::Simulator sim;
    StorageNetwork net(sim, Topology::ring(6, 2), defaultParams());
    std::vector<int> order;
    net.endpoint(3, 2).setReceiveHandler([&](Message m) {
        order.push_back(m.payload.take<int>());
    });
    for (int i = 0; i < 200; ++i)
        net.endpoint(0, 2).send(3, 64 + (i % 7) * 100, i);
    sim.run();
    ASSERT_EQ(order.size(), 200u);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Network, DifferentEndpointsUseDifferentParallelLanes)
{
    // Ring with 4 parallel lanes: endpoints must spread across them.
    sim::Simulator sim;
    StorageNetwork net(sim, Topology::ring(4, 4), defaultParams());
    std::set<int> lanes;
    for (net::EndpointId e = 1; e < net.endpointCount(); ++e)
        lanes.insert(net.routeLane(e, 0, 1));
    EXPECT_GE(lanes.size(), 4u);
}

TEST(Network, RouteHopsMatchesShortestPath)
{
    sim::Simulator sim;
    StorageNetwork net(sim, Topology::ring(8, 1), defaultParams());
    // On an 8-ring, opposite node is 4 hops away.
    EXPECT_EQ(net.routeHops(1, 0, 4), 4u);
    EXPECT_EQ(net.routeHops(1, 0, 1), 1u);
    EXPECT_EQ(net.routeHops(1, 0, 7), 1u);
    EXPECT_EQ(net.routeHops(1, 2, 6), 4u);
}

TEST(Network, RoutesAreDeterministic)
{
    sim::Simulator sim1, sim2;
    StorageNetwork a(sim1, Topology::mesh2d(3, 3), defaultParams());
    StorageNetwork b(sim2, Topology::mesh2d(3, 3), defaultParams());
    for (net::EndpointId e = 1; e < a.endpointCount(); ++e) {
        for (NodeId s = 0; s < 9; ++s) {
            for (NodeId d = 0; d < 9; ++d)
                EXPECT_EQ(a.routeLane(e, s, d), b.routeLane(e, s, d));
        }
    }
}

TEST(Network, LoopbackDelivers)
{
    sim::Simulator sim;
    StorageNetwork net(sim, Topology::line(2), defaultParams());
    int got = 0;
    net.endpoint(0, 1).setReceiveHandler([&](Message m) {
        EXPECT_EQ(m.src, 0);
        ++got;
    });
    net.endpoint(0, 1).send(0, 128, {});
    sim.run();
    EXPECT_EQ(got, 1);
}

TEST(Network, BidirectionalTrafficDoesNotInterfere)
{
    // Full-duplex lanes: A->B and B->A streams both get full rate.
    sim::Simulator sim;
    StorageNetwork net(sim, Topology::line(2), defaultParams());
    int got_a = 0, got_b = 0;
    Tick last = 0;
    net.endpoint(1, 1).setReceiveHandler([&](Message) {
        ++got_b;
        last = std::max(last, sim.now());
    });
    net.endpoint(0, 1).setReceiveHandler([&](Message) {
        ++got_a;
        last = std::max(last, sim.now());
    });
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        net.endpoint(0, 1).send(1, 2048, {});
        net.endpoint(1, 1).send(0, 2048, {});
    }
    sim.run();
    EXPECT_EQ(got_a, n);
    EXPECT_EQ(got_b, n);
    double per_dir = sim::bytesPerSec(std::uint64_t(n) * 2048, last);
    EXPECT_GT(per_dir, net.laneParams().effectiveBytesPerSec() * 0.9);
}

TEST(Network, StalledReceiverBlocksWithoutLosingData)
{
    // Receiver with a tiny buffer and no drain: messages park and
    // hold credits. Once the consumer drains, everything arrives in
    // order -- token flow control never drops packets.
    sim::Simulator sim;
    StorageNetwork::Params p;
    p.recvCapacity = 2;
    StorageNetwork net(sim, Topology::line(3), p);
    const int n = 50;
    for (int i = 0; i < n; ++i)
        net.endpoint(0, 1).send(2, 4096, i);
    sim.run(); // receiver never drains; network must quiesce
    Endpoint &rx = net.endpoint(2, 1);
    EXPECT_LE(rx.pendingReceive(), 2u);

    // Now drain; parked and in-flight messages flow in order.
    std::vector<int> order;
    rx.setReceiveHandler([&](Message m) {
        order.push_back(m.payload.take<int>());
    });
    sim.run();
    ASSERT_EQ(order.size(), std::size_t(n));
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Network, EndToEndFlowControlBoundsInFlight)
{
    sim::Simulator sim;
    StorageNetwork::Params p;
    p.recvCapacity = 4;
    StorageNetwork net(sim, Topology::line(2), p);
    Endpoint &tx = net.endpoint(0, 1);
    tx.enableEndToEnd(4);
    const int n = 40;
    for (int i = 0; i < n; ++i)
        tx.send(1, 1024, i);
    sim.run(); // no drain: at most credits+capacity messages moved
    Endpoint &rx = net.endpoint(1, 1);
    EXPECT_LE(rx.pendingReceive(), 4u);

    std::vector<int> order;
    rx.setReceiveHandler([&](Message m) {
        order.push_back(m.payload.take<int>());
    });
    sim.run();
    ASSERT_EQ(order.size(), std::size_t(n));
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Network, EndToEndAddsLatencyVersusRawEndpoint)
{
    // The safety of end-to-end flow control costs round trips on a
    // long path (paper section 3.2.3): with a small credit window the
    // stream is limited by the credit RTT rather than the wire rate.
    auto run_stream = [](bool e2e) {
        sim::Simulator sim;
        StorageNetwork net(sim, Topology::line(6), defaultParams());
        Endpoint &tx = net.endpoint(0, 1);
        if (e2e)
            tx.enableEndToEnd(2); // tight credit window
        Tick last = 0;
        int got = 0;
        net.endpoint(5, 1).setReceiveHandler([&](Message) {
            ++got;
            last = sim.now();
        });
        for (int i = 0; i < 200; ++i)
            tx.send(5, 512, {});
        sim.run();
        EXPECT_EQ(got, 200);
        return last;
    };
    Tick raw = run_stream(false);
    Tick flow_controlled = run_stream(true);
    EXPECT_GT(flow_controlled, raw * 2);
}

TEST(Network, ManyToOneKeepsAllData)
{
    sim::Simulator sim;
    StorageNetwork net(sim, Topology::mesh2d(3, 3), defaultParams());
    int got = 0;
    net.endpoint(4, 1).setReceiveHandler([&](Message) { ++got; });
    for (NodeId src = 0; src < 9; ++src) {
        if (src == 4)
            continue;
        for (int i = 0; i < 50; ++i)
            net.endpoint(src, 1).send(4, 512, {});
    }
    sim.run();
    EXPECT_EQ(got, 8 * 50);
}

TEST(Network, AllPairsDeliveryOnMesh)
{
    sim::Simulator sim;
    StorageNetwork net(sim, Topology::mesh2d(3, 2), defaultParams());
    int expected = 0, got = 0;
    for (NodeId d = 0; d < 6; ++d) {
        net.endpoint(d, 1).setReceiveHandler(
            [&got](Message) { ++got; });
    }
    for (NodeId s = 0; s < 6; ++s) {
        for (NodeId d = 0; d < 6; ++d) {
            if (s == d)
                continue;
            net.endpoint(s, 1).send(d, 256, {});
            ++expected;
        }
    }
    sim.run();
    EXPECT_EQ(got, expected);
}

TEST(Network, RoutingMemoryIndependentOfEndpointCount)
{
    // Next-hop RouteSlots are per (src,dst) pair over one shared
    // ECMP candidate pool; the per-endpoint spread happens at
    // lookup time (e % count), so adding endpoints must not grow
    // the resident tables at all.
    sim::Simulator sim1, sim2;
    auto few = defaultParams();
    few.endpoints = 2;
    auto many = defaultParams();
    many.endpoints = 16;
    StorageNetwork a(sim1, Topology::ring(8, 2), few);
    StorageNetwork b(sim2, Topology::ring(8, 2), many);
    EXPECT_GT(a.routingTableBytes(), 0u);
    EXPECT_EQ(a.routingTableBytes(), b.routingTableBytes());
}

TEST(Network, EcmpSpreadRotatesByEndpointModuloPathCount)
{
    // ring(4, 4): four equal-cost parallel lanes between neighbors.
    // The per-endpoint rotation is e % count over the candidate
    // slice, so endpoints 4 apart must share a lane and the four
    // residue classes must cover all four lanes.
    sim::Simulator sim;
    auto params = defaultParams();
    params.endpoints = 9;
    StorageNetwork net(sim, Topology::ring(4, 4), params);
    std::set<int> lanes;
    for (net::EndpointId e = 1; e <= 4; ++e) {
        lanes.insert(net.routeLane(e, 0, 1));
        EXPECT_EQ(net.routeLane(e, 0, 1),
                  net.routeLane(net::EndpointId(e + 4), 0, 1));
    }
    EXPECT_EQ(lanes.size(), 4u);
}
