/**
 * @file
 * Parameterized property sweeps (TEST_P): invariants that must hold
 * across whole families of configurations -- network topologies,
 * flash geometries, FTL over-provisioning levels and link
 * parameters.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "flash/flash_card.hh"
#include "flash/flash_server.hh"
#include "ftl/ftl.hh"
#include "net/network.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using net::Message;
using net::StorageNetwork;
using net::Topology;

// ----------------------------------------------------------------- //
// Network properties across topology families
// ----------------------------------------------------------------- //

namespace {

struct TopoCase
{
    std::string name;
    Topology topo;
};

std::vector<TopoCase>
topoCases()
{
    return {
        {"ring8x2", Topology::ring(8, 2)},
        {"line5", Topology::line(5)},
        {"mesh3x3", Topology::mesh2d(3, 3)},
        {"star12h3", Topology::distributedStar(12, 3)},
        {"fattree10", Topology::fatTree(10, 2)},
        {"full6", Topology::fullyConnected(6)},
    };
}

} // namespace

class NetworkTopologyProperty
    : public ::testing::TestWithParam<TopoCase>
{
};

TEST_P(NetworkTopologyProperty, AllPairsDeliverEverything)
{
    const Topology &topo = GetParam().topo;
    sim::Simulator sim;
    StorageNetwork net(sim, topo, StorageNetwork::Params{});
    int got = 0, expected = 0;
    for (net::NodeId d = 0; d < topo.nodes; ++d)
        net.endpoint(d, 1).setReceiveHandler([&](Message) { ++got; });
    for (net::NodeId s = 0; s < topo.nodes; ++s) {
        for (net::NodeId d = 0; d < topo.nodes; ++d) {
            if (s == d)
                continue;
            for (int i = 0; i < 5; ++i) {
                net.endpoint(s, 1).send(d, 256, {});
                ++expected;
            }
        }
    }
    sim.run();
    EXPECT_EQ(got, expected);
}

TEST_P(NetworkTopologyProperty, PerEndpointOrderHolds)
{
    const Topology &topo = GetParam().topo;
    sim::Simulator sim;
    StorageNetwork net(sim, topo, StorageNetwork::Params{});
    net::NodeId dst = net::NodeId(topo.nodes - 1);
    std::vector<int> order;
    net.endpoint(dst, 2).setReceiveHandler([&](Message m) {
        order.push_back(m.payload.take<int>());
    });
    for (int i = 0; i < 100; ++i)
        net.endpoint(0, 2).send(dst, 64 + (i % 5) * 200, i);
    sim.run();
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[i], i);
}

TEST_P(NetworkTopologyProperty, RoutesReachEveryDestination)
{
    const Topology &topo = GetParam().topo;
    sim::Simulator sim;
    StorageNetwork net(sim, topo, StorageNetwork::Params{});
    for (net::EndpointId e = 1; e < net.endpointCount(); ++e) {
        for (net::NodeId s = 0; s < topo.nodes; ++s) {
            for (net::NodeId d = 0; d < topo.nodes; ++d) {
                if (s == d)
                    continue;
                unsigned hops = net.routeHops(e, s, d);
                EXPECT_GE(hops, 1u);
                EXPECT_LT(hops, topo.nodes);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, NetworkTopologyProperty,
    ::testing::ValuesIn(topoCases()),
    [](const ::testing::TestParamInfo<TopoCase> &info) {
        return info.param.name;
    });

// ----------------------------------------------------------------- //
// Flash data-path integrity across geometries
// ----------------------------------------------------------------- //

namespace {

struct GeoCase
{
    std::string name;
    flash::Geometry geo;
};

std::vector<GeoCase>
geoCases()
{
    std::vector<GeoCase> cases;
    {
        flash::Geometry g = flash::Geometry::tiny();
        cases.push_back({"tiny", g});
    }
    {
        flash::Geometry g;
        g.buses = 4;
        g.chipsPerBus = 4;
        g.blocksPerChip = 4;
        g.pagesPerBlock = 8;
        g.pageSize = 2048;
        cases.push_back({"wide4x4", g});
    }
    {
        flash::Geometry g;
        g.buses = 1;
        g.chipsPerBus = 8;
        g.blocksPerChip = 16;
        g.pagesPerBlock = 4;
        g.pageSize = 4096;
        cases.push_back({"singlebus", g});
    }
    {
        flash::Geometry g;
        g.buses = 8;
        g.chipsPerBus = 1;
        g.blocksPerChip = 2;
        g.pagesPerBlock = 32;
        g.pageSize = 1024;
        cases.push_back({"manybus", g});
    }
    return cases;
}

} // namespace

class FlashGeometryProperty : public ::testing::TestWithParam<GeoCase>
{
};

TEST_P(FlashGeometryProperty, AddressRoundTripsAreBijective)
{
    const flash::Geometry &g = GetParam().geo;
    for (std::uint64_t i = 0; i < g.pages(); ++i) {
        auto a = flash::Address::fromLinear(g, i);
        ASSERT_TRUE(a.validFor(g));
        ASSERT_EQ(a.linearize(g), i);
        auto s = flash::Address::fromStriped(g, i);
        ASSERT_TRUE(s.validFor(g));
    }
}

TEST_P(FlashGeometryProperty, WriteReadIntegrityThroughServer)
{
    const flash::Geometry &g = GetParam().geo;
    sim::Simulator sim;
    flash::FlashCard card(sim, g, flash::Timing::fast(), 32);
    auto &port = card.splitter().addPort(32);
    flash::FlashServer server(sim, port, 2, 8);
    sim::Rng rng(7);

    // Pick target pages first, then erase each distinct block ONCE
    // (an erase wipes the whole block, so it must precede all of the
    // block's programs).
    std::vector<std::uint64_t> targets;
    std::set<std::uint64_t> seen_pages, blocks;
    for (int i = 0; i < 24; ++i) {
        auto linear = rng.below(g.pages());
        if (seen_pages.insert(linear).second)
            targets.push_back(linear);
    }
    for (auto linear : targets) {
        auto addr = flash::Address::fromLinear(g, linear);
        std::uint64_t block_key = linear / g.pagesPerBlock;
        if (!blocks.insert(block_key).second)
            continue;
        bool prepared = false;
        server.eraseBlock(0, addr,
                          [&](flash::Status) { prepared = true; });
        sim.run();
        ASSERT_TRUE(prepared);
    }

    std::map<std::uint64_t, flash::PageBuffer> written;
    for (auto linear : targets) {
        flash::PageBuffer data(g.pageSize);
        for (auto &b : data)
            b = std::uint8_t(rng.next());
        auto addr = flash::Address::fromLinear(g, linear);
        bool ok = false;
        server.writePage(0, addr, data, [&](flash::Status st) {
            ok = st == flash::Status::Ok;
        });
        sim.run();
        ASSERT_TRUE(ok);
        written[linear] = std::move(data);
    }
    ASSERT_GT(written.size(), 10u);
    for (const auto &[linear, expect] : written) {
        flash::PageBuffer got;
        server.readPage(1, flash::Address::fromLinear(g, linear),
                        [&](flash::PageBuffer d, flash::Status) {
            got = std::move(d);
        });
        sim.run();
        EXPECT_EQ(got, expect) << GetParam().name << " @" << linear;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FlashGeometryProperty,
    ::testing::ValuesIn(geoCases()),
    [](const ::testing::TestParamInfo<GeoCase> &info) {
        return info.param.name;
    });

// ----------------------------------------------------------------- //
// FTL invariants across over-provisioning levels
// ----------------------------------------------------------------- //

class FtlOverProvisionProperty
    : public ::testing::TestWithParam<double>
{
};

TEST_P(FtlOverProvisionProperty, HotWorkloadStaysCorrectAndBounded)
{
    double op = GetParam();
    sim::Simulator sim;
    flash::Geometry geo = flash::Geometry::tiny();
    flash::FlashCard card(sim, geo, flash::Timing::fast(), 64);
    auto &port = card.splitter().addPort(64);
    flash::FlashServer server(sim, port, 1, 16);
    ftl::FtlParams params;
    params.overProvision = op;
    ftl::Ftl ftl(sim, server, 0, geo, params);

    const std::uint64_t hot = 12;
    const int rounds = 120;
    auto pattern = [&](std::uint32_t seed) {
        flash::PageBuffer p(geo.pageSize);
        for (std::size_t i = 0; i < p.size(); ++i)
            p[i] = std::uint8_t(seed * 17 + i);
        return p;
    };
    for (int r = 0; r < rounds; ++r) {
        for (std::uint64_t lpn = 0; lpn < hot; ++lpn) {
            ftl.write(lpn, pattern(std::uint32_t(r * hot + lpn)),
                      [](bool ok) { EXPECT_TRUE(ok); });
        }
        sim.run();
    }
    for (std::uint64_t lpn = 0; lpn < hot; ++lpn) {
        flash::PageBuffer got;
        ftl.read(lpn, [&](flash::PageBuffer d, bool ok) {
            EXPECT_TRUE(ok);
            got = std::move(d);
        });
        sim.run();
        EXPECT_EQ(got,
                  pattern(std::uint32_t((rounds - 1) * hot + lpn)));
    }
    // A hot set much smaller than a block keeps WAF modest at any
    // sane over-provisioning.
    EXPECT_LT(ftl.writeAmplification(), 2.0);
    EXPECT_GT(ftl.freeBlocks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(OverProvision, FtlOverProvisionProperty,
                         ::testing::Values(0.07, 0.125, 0.25, 0.4));

// ----------------------------------------------------------------- //
// Link parameter sweeps: rate and latency scale as configured
// ----------------------------------------------------------------- //

class LaneRateProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(LaneRateProperty, StreamTracksConfiguredRate)
{
    double gbit = GetParam();
    sim::Simulator sim;
    StorageNetwork::Params p;
    p.lane.physBytesPerSec = gbit * 1e9 / 8.0;
    StorageNetwork net(sim, Topology::line(2), p);
    int got = 0;
    sim::Tick last = 0;
    net.endpoint(1, 1).setReceiveHandler([&](Message) {
        ++got;
        last = sim.now();
    });
    const int msgs = 500;
    for (int i = 0; i < msgs; ++i)
        net.endpoint(0, 1).send(1, 2048, {});
    sim.run();
    ASSERT_EQ(got, msgs);
    double rate = sim::bytesPerSec(2048ull * msgs, last);
    double expect = p.lane.effectiveBytesPerSec();
    EXPECT_NEAR(rate, expect, expect * 0.05);
}

INSTANTIATE_TEST_SUITE_P(LinkRates, LaneRateProperty,
                         ::testing::Values(2.5, 5.0, 10.0, 40.0));
