/**
 * @file
 * Unit tests for the metrics registry: identity, labels, totals,
 * gauges and delta snapshots.
 */

#include <gtest/gtest.h>

#include "sim/metrics.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using sim::MetricsRegistry;

TEST(MetricsRegistry, CounterIdentityByNameAndLabels)
{
    MetricsRegistry reg;
    sim::Counter &a = reg.counter("kv.ops", {{"inst", "0"}});
    sim::Counter &b = reg.counter("kv.ops", {{"inst", "0"}});
    sim::Counter &c = reg.counter("kv.ops", {{"inst", "1"}});
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);
    a.inc();
    a.inc(4);
    c.inc();
    EXPECT_EQ(b.value(), 5u);
    EXPECT_EQ(reg.counterTotal("kv.ops"), 6u);
    // Label order must not change identity.
    sim::Counter &d =
        reg.counter("x", {{"a", "1"}, {"b", "2"}});
    sim::Counter &e =
        reg.counter("x", {{"b", "2"}, {"a", "1"}});
    EXPECT_EQ(&d, &e);
}

TEST(MetricsRegistry, TotalDoesNotMatchNamePrefixes)
{
    MetricsRegistry reg;
    reg.counter("kv.ops").inc(3);
    reg.counter("kv.ops_failed").inc(5);
    EXPECT_EQ(reg.counterTotal("kv.ops"), 3u);
}

TEST(MetricsRegistry, HistogramMergesAcrossLabels)
{
    MetricsRegistry reg;
    reg.histogram("stage.nand", {{"class", "read"}}).record(100);
    reg.histogram("stage.nand", {{"class", "bg"}}).record(300);
    sim::LatencyHistogram all = reg.histogramTotal("stage.nand");
    EXPECT_EQ(all.count(), 2u);
    EXPECT_EQ(all.min(), 100u);
    EXPECT_EQ(all.max(), 300u);
}

TEST(MetricsRegistry, GaugesEvaluateAtReadTime)
{
    MetricsRegistry reg;
    double depth = 3;
    reg.registerGauge("q.depth", {{"ifc", "0"}},
                      [&depth]() { return depth; });
    reg.registerGauge("q.depth", {{"ifc", "1"}},
                      []() { return 2.0; });
    EXPECT_DOUBLE_EQ(reg.gaugeTotal("q.depth"), 5.0);
    depth = 10;
    EXPECT_DOUBLE_EQ(reg.gaugeTotal("q.depth"), 12.0);
}

TEST(MetricsRegistry, InstanceSerialsPerKind)
{
    MetricsRegistry reg;
    EXPECT_EQ(reg.nextInstance("kv.shard"), 0u);
    EXPECT_EQ(reg.nextInstance("kv.shard"), 1u);
    EXPECT_EQ(reg.nextInstance("nand"), 0u);
    EXPECT_EQ(reg.nextInstance("kv.shard"), 2u);
}

TEST(MetricsRegistry, DeltaSnapshotsIsolatePhases)
{
    MetricsRegistry reg;
    sim::Counter &timeouts =
        reg.counter("kv.router.read_timeouts");
    timeouts.inc(7); // steady-state phase
    auto steadyEnd = reg.snapshot();
    timeouts.inc(5); // crash window
    // A counter born mid-run must still delta from zero.
    reg.counter("late.comer").inc(2);
    auto windowEnd = reg.snapshot();
    auto window = windowEnd.deltaSince(steadyEnd);
    EXPECT_EQ(window.total("kv.router.read_timeouts"), 5u);
    EXPECT_EQ(window.total("late.comer"), 2u);
    EXPECT_EQ(steadyEnd.total("kv.router.read_timeouts"), 7u);
    EXPECT_EQ(
        window.value(
            MetricsRegistry::key("kv.router.read_timeouts", {})),
        5u);
}

TEST(MetricsRegistry, SimulatorOwnsRegistryAndTracer)
{
    sim::Simulator sim;
    sim.metrics().counter("a").inc();
    EXPECT_EQ(sim.metrics().counterTotal("a"), 1u);
    EXPECT_FALSE(sim.tracer().enabled());
    std::uint64_t seen = 0;
    sim.metrics().forEachCounter(
        [&](const std::string &k, std::uint64_t v) {
            EXPECT_EQ(k, "a");
            seen += v;
        });
    EXPECT_EQ(seen, 1u);
}
