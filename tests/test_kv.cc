/**
 * @file
 * Unit and integration tests for the sharded key-value service:
 * shard storage semantics, consistent-hash routing with
 * replication, and the admission-controlled front-end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/cluster.hh"
#include "kv/kv_router.hh"
#include "kv/kv_service.hh"
#include "kv/kv_shard.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using flash::PageBuffer;
using kv::Key;
using kv::KvStatus;

namespace {

core::ClusterParams
kvCluster(unsigned nodes)
{
    core::ClusterParams p;
    p.topology = nodes == 2 ? net::Topology::line(2)
                            : net::Topology::ring(nodes, 2);
    p.node.geometry = flash::Geometry::tiny();
    p.node.timing = flash::Timing::fast();
    p.node.cards = 2;
    p.node.controllerTags = 64;
    p.network.endpoints = kv::kvRequiredEndpoints;
    return p;
}

PageBuffer
val(std::uint8_t fill, std::size_t n = 64)
{
    return PageBuffer(n, fill);
}

} // namespace

// ---------------------------------------------------------------- //
// KvShard
// ---------------------------------------------------------------- //

TEST(KvShard, PutGetRoundTrip)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    bool put_ok = false;
    shard.put(7, val(0xaa), [&](KvStatus st) {
        put_ok = st == KvStatus::Ok;
    });
    sim.run();
    EXPECT_TRUE(put_ok);
    EXPECT_TRUE(shard.contains(7));
    EXPECT_EQ(shard.keyCount(), 1u);

    PageBuffer got;
    KvStatus st = KvStatus::Error;
    shard.get(7, [&](PageBuffer v, KvStatus s, std::uint64_t) {
        got = std::move(v);
        st = s;
    });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(got, val(0xaa));
}

TEST(KvShard, ReadYourWritesBeforeDurable)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    // Get issued immediately after put, before the log append has
    // any chance to reach flash: served from the memtable.
    shard.put(1, val(0x11), [](KvStatus) {});
    PageBuffer got;
    shard.get(1, [&](PageBuffer v, KvStatus, std::uint64_t) {
        got = std::move(v);
    });
    sim.run();
    EXPECT_EQ(got, val(0x11));
    EXPECT_GE(shard.memtableHits(), 1u);

    // After the append is durable the memtable entry retires and
    // the value comes back from flash.
    PageBuffer again;
    shard.get(1, [&](PageBuffer v, KvStatus, std::uint64_t) {
        again = std::move(v);
    });
    sim.run();
    EXPECT_EQ(again, val(0x11));
    EXPECT_EQ(shard.memtableHits(), 1u);
}

TEST(KvShard, OverwriteReturnsLatest)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    shard.put(3, val(0x01), [](KvStatus) {});
    sim.run();
    shard.put(3, val(0x02), [](KvStatus) {});
    sim.run();
    PageBuffer got;
    shard.get(3, [&](PageBuffer v, KvStatus, std::uint64_t) {
        got = std::move(v);
    });
    sim.run();
    EXPECT_EQ(got, val(0x02));
    EXPECT_EQ(shard.keyCount(), 1u);
    EXPECT_EQ(shard.liveBytes(), 64u);
    EXPECT_GT(shard.logBytes(), shard.liveBytes());
}

TEST(KvShard, DeleteThenMiss)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    shard.put(5, val(0x05), [](KvStatus) {});
    sim.run();
    KvStatus del_st = KvStatus::Error;
    shard.del(5, [&](KvStatus st) { del_st = st; });
    sim.run();
    EXPECT_EQ(del_st, KvStatus::Ok);
    EXPECT_FALSE(shard.contains(5));

    KvStatus get_st = KvStatus::Ok;
    shard.get(5, [&](PageBuffer, KvStatus st, std::uint64_t) {
        get_st = st;
    });
    KvStatus del2_st = KvStatus::Ok;
    shard.del(5, [&](KvStatus st) { del2_st = st; });
    sim.run();
    EXPECT_EQ(get_st, KvStatus::NotFound);
    EXPECT_EQ(del2_st, KvStatus::NotFound);
}

TEST(KvShard, DeleteAndReputWhileAppendInFlight)
{
    // Regression: a still-in-flight append of the key's previous
    // life must not retire the new life's memtable entry.
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    shard.put(9, val(0x0a), [](KvStatus) {});
    shard.del(9, [](KvStatus) {});
    shard.put(9, val(0x0b), [](KvStatus) {});
    sim.run();

    PageBuffer got;
    KvStatus st = KvStatus::Error;
    shard.get(9, [&](PageBuffer v, KvStatus s, std::uint64_t) {
        got = std::move(v);
        st = s;
    });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(got, val(0x0b));
}

// ---------------------------------------------------------------- //
// KvRouter
// ---------------------------------------------------------------- //

TEST(KvRouter, OwnersAreDeterministicAndDistinct)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvParams kp;
    kp.replication = 3;
    kv::KvRouter router(sim, cluster, kp);

    for (Key k = 0; k < 200; ++k) {
        auto own = router.owners(k);
        ASSERT_EQ(own.size(), 3u);
        std::set<net::NodeId> uniq(own.begin(), own.end());
        EXPECT_EQ(uniq.size(), 3u);
        EXPECT_EQ(own, router.owners(k));
        for (net::NodeId n : own)
            EXPECT_LT(n, 4u);
    }
}

TEST(KvRouter, PrimariesBalanceAcrossNodes)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});

    std::vector<unsigned> counts(4, 0);
    const unsigned keys = 4000;
    for (Key k = 0; k < keys; ++k)
        ++counts[router.owners(k)[0]];
    for (unsigned n = 0; n < 4; ++n) {
        // Mean is 25%; consistent hashing with 64 vnodes stays well
        // inside a 2x envelope.
        EXPECT_GT(counts[n], keys / 8) << "node " << n;
        EXPECT_LT(counts[n], keys / 2) << "node " << n;
    }
}

TEST(KvRouter, PutReplicatesToAllOwners)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});

    const Key key = 42;
    KvStatus st = KvStatus::Error;
    router.put(0, key, val(0x42), [&](KvStatus s) { st = s; });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);

    auto own = router.owners(key);
    ASSERT_EQ(own.size(), 2u);
    for (net::NodeId n : own)
        EXPECT_TRUE(router.shard(n).contains(key))
            << "replica on node " << n;
    // Only the owners hold it.
    for (unsigned n = 0; n < 4; ++n) {
        if (std::find(own.begin(), own.end(), n) == own.end()) {
            EXPECT_FALSE(
                router.shard(net::NodeId(n)).contains(key));
        }
    }
}

TEST(KvRouter, RemoteGetCrossesNetwork)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});

    // A key owned by neither replica on node 0.
    Key key = 0;
    while (true) {
        auto own = router.owners(key);
        if (std::find(own.begin(), own.end(), 0) == own.end())
            break;
        ++key;
    }
    router.put(0, key, val(0x77), [](KvStatus) {});
    sim.run();
    std::uint64_t remote_before = router.remoteOps();

    PageBuffer got;
    KvStatus st = KvStatus::Error;
    router.get(0, key, [&](PageBuffer v, KvStatus s) {
        got = std::move(v);
        st = s;
    });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(got, val(0x77));
    EXPECT_GT(router.remoteOps(), remote_before);
}

TEST(KvRouter, ReadPrefersLocalReplica)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});

    // A key with a replica on node 2.
    Key key = 0;
    while (true) {
        auto own = router.owners(key);
        if (std::find(own.begin(), own.end(), 2) != own.end())
            break;
        ++key;
    }
    EXPECT_EQ(router.readReplica(2, key), 2u);
    router.put(2, key, val(0x33), [](KvStatus) {});
    sim.run();

    std::uint64_t local_before = router.localOps();
    PageBuffer got;
    router.get(2, key, [&](PageBuffer v, KvStatus) {
        got = std::move(v);
    });
    sim.run();
    EXPECT_EQ(got, val(0x33));
    EXPECT_GT(router.localOps(), local_before);
}

TEST(KvRouter, DeleteRemovesEveryReplica)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});

    const Key key = 19;
    router.put(1, key, val(0x19), [](KvStatus) {});
    sim.run();
    KvStatus st = KvStatus::Error;
    router.del(3, key, [&](KvStatus s) { st = s; });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    for (unsigned n = 0; n < 4; ++n)
        EXPECT_FALSE(router.shard(net::NodeId(n)).contains(key));

    KvStatus get_st = KvStatus::Ok;
    router.get(0, key, [&](PageBuffer, KvStatus s) { get_st = s; });
    sim.run();
    EXPECT_EQ(get_st, KvStatus::NotFound);
}

TEST(KvRouter, MultiGetAlignsValuesWithKeys)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});

    router.put(0, 1, val(0x01), [](KvStatus) {});
    router.put(1, 2, val(0x02), [](KvStatus) {});
    sim.run();

    std::vector<PageBuffer> values;
    std::vector<KvStatus> sts;
    router.multiGet(3, {2, 99, 1},
                    [&](std::vector<PageBuffer> v,
                        std::vector<KvStatus> s) {
        values = std::move(v);
        sts = std::move(s);
    });
    sim.run();
    ASSERT_EQ(values.size(), 3u);
    EXPECT_EQ(sts[0], KvStatus::Ok);
    EXPECT_EQ(values[0], val(0x02));
    EXPECT_EQ(sts[1], KvStatus::NotFound);
    EXPECT_EQ(sts[2], KvStatus::Ok);
    EXPECT_EQ(values[2], val(0x01));
}

TEST(KvRouter, ManyMixedOpsAllComplete)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});

    const int keys = 150;
    int acks = 0;
    for (int k = 0; k < keys; ++k) {
        router.put(net::NodeId(k % 4), Key(k),
                   val(std::uint8_t(k), 32),
                   [&](KvStatus st) {
            EXPECT_EQ(st, KvStatus::Ok);
            ++acks;
        });
    }
    sim.run();
    EXPECT_EQ(acks, keys);

    int gets = 0;
    for (int k = 0; k < keys; ++k) {
        router.get(net::NodeId((k + 1) % 4), Key(k),
                   [&, k](PageBuffer v, KvStatus st) {
            EXPECT_EQ(st, KvStatus::Ok);
            EXPECT_EQ(v, val(std::uint8_t(k), 32));
            ++gets;
        });
    }
    sim.run();
    EXPECT_EQ(gets, keys);
}

// ---------------------------------------------------------------- //
// KvService
// ---------------------------------------------------------------- //

TEST(KvService, WindowBoundsInFlight)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvRouter router(sim, cluster, kv::KvParams{});
    kv::KvService service(sim, router);

    router.put(0, 1, val(0x01), [](KvStatus) {});
    sim.run();

    kv::KvService::ClientParams cp;
    cp.window = 2;
    cp.queueCap = 64;
    auto client = service.addClient(0, cp);

    int done = 0;
    for (int i = 0; i < 10; ++i) {
        service.get(client, 1,
                    [&](PageBuffer, KvStatus st) {
            EXPECT_EQ(st, KvStatus::Ok);
            ++done;
        });
    }
    // Submission is synchronous: exactly window ops dispatched, the
    // rest parked in the client's queue.
    EXPECT_EQ(service.inFlight(client), 2u);
    EXPECT_EQ(service.queued(client), 8u);
    sim.run();
    EXPECT_EQ(done, 10);
    EXPECT_EQ(service.inFlight(client), 0u);
    EXPECT_EQ(service.admitted(), 10u);
    EXPECT_EQ(service.rejected(), 0u);
}

TEST(KvService, AdmissionRejectsBeyondQueueCap)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvRouter router(sim, cluster, kv::KvParams{});
    kv::KvService service(sim, router);

    kv::KvService::ClientParams cp;
    cp.window = 1;
    cp.queueCap = 2;
    auto client = service.addClient(0, cp);

    int overloaded = 0, completed = 0;
    for (int i = 0; i < 6; ++i) {
        service.put(client, Key(i), val(std::uint8_t(i), 16),
                    [&](KvStatus st) {
            ++completed;
            if (st == KvStatus::Overloaded)
                ++overloaded;
        });
    }
    sim.run();
    EXPECT_EQ(completed, 6);
    // 1 in flight + 2 queued admitted; 3 rejected.
    EXPECT_EQ(overloaded, 3);
    EXPECT_EQ(service.rejected(), 3u);
    EXPECT_EQ(service.admitted(), 3u);
}

TEST(KvService, MultiGetCountsAsOneWindowSlot)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});
    kv::KvService service(sim, router);

    for (Key k = 0; k < 8; ++k)
        router.put(0, k, val(std::uint8_t(k), 16), [](KvStatus) {});
    sim.run();

    kv::KvService::ClientParams cp;
    cp.window = 1;
    auto client = service.addClient(1, cp);
    int done = 0;
    service.multiGet(client, {0, 1, 2, 3, 4, 5, 6, 7},
                     [&](std::vector<PageBuffer> values,
                         std::vector<KvStatus> sts) {
        EXPECT_EQ(values.size(), 8u);
        for (KvStatus st : sts)
            EXPECT_EQ(st, KvStatus::Ok);
        ++done;
    });
    EXPECT_EQ(service.inFlight(client), 1u);
    sim.run();
    EXPECT_EQ(done, 1);
}

TEST(KvService, RejectedMultiGetReportsPerKeyOverload)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvRouter router(sim, cluster, kv::KvParams{});
    kv::KvService service(sim, router);

    kv::KvService::ClientParams cp;
    cp.window = 1;
    cp.queueCap = 0;
    auto client = service.addClient(0, cp);

    // queueCap 0: everything beyond... even the first op needs a
    // queue slot, so it is rejected outright.
    bool saw = false;
    service.multiGet(client, {1, 2, 3},
                     [&](std::vector<PageBuffer> values,
                         std::vector<KvStatus> sts) {
        saw = true;
        EXPECT_EQ(values.size(), 3u);
        for (KvStatus st : sts)
            EXPECT_EQ(st, KvStatus::Overloaded);
    });
    sim.run();
    EXPECT_TRUE(saw);
}

// ---------------------------------------------------------------- //
// Append-failure durability (fault injection)
// ---------------------------------------------------------------- //

namespace {

/** Fail every page program on @p node's FS flash server. */
void
armWriteFault(core::Cluster &cluster, unsigned node)
{
    cluster.node(node).hostServer(0).setWriteFault(
        [](const flash::Address &) { return true; });
}

void
disarmWriteFault(core::Cluster &cluster, unsigned node)
{
    cluster.node(node).hostServer(0).setWriteFault(nullptr);
}

} // namespace

TEST(KvShard, FailedAppendRollsBackToLastDurable)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    shard.put(7, val(0xaa), [](KvStatus) {});
    sim.run();
    std::uint64_t log_bytes = shard.logBytes();

    // The overwrite's append fails: the put must ack Error and the
    // key must roll back to the durable 0xaa version -- never the
    // never-written 0xbb flash bytes.
    armWriteFault(cluster, 0);
    KvStatus put_st = KvStatus::Ok;
    shard.put(7, val(0xbb), [&](KvStatus st) { put_st = st; });
    sim.run();
    EXPECT_EQ(put_st, KvStatus::Error);
    EXPECT_EQ(shard.failedPuts(), 1u);
    EXPECT_EQ(shard.liveBytes(), 64u);
    EXPECT_EQ(shard.logBytes(), log_bytes);

    PageBuffer got;
    KvStatus st = KvStatus::Error;
    shard.get(7, [&](PageBuffer v, KvStatus s, std::uint64_t) {
        got = std::move(v);
        st = s;
    });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(got, val(0xaa));

    // Healthy again: the next put overwrites normally.
    disarmWriteFault(cluster, 0);
    shard.put(7, val(0xcc), [&](KvStatus s) { put_st = s; });
    sim.run();
    EXPECT_EQ(put_st, KvStatus::Ok);
    shard.get(7, [&](PageBuffer v, KvStatus, std::uint64_t) {
        got = std::move(v);
    });
    sim.run();
    EXPECT_EQ(got, val(0xcc));
}

TEST(KvShard, FailedFirstAppendLeavesKeyAbsent)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    armWriteFault(cluster, 0);
    KvStatus put_st = KvStatus::Ok;
    shard.put(1, val(0x11), [&](KvStatus st) { put_st = st; });
    sim.run();
    EXPECT_EQ(put_st, KvStatus::Error);
    EXPECT_FALSE(shard.contains(1));
    EXPECT_EQ(shard.liveBytes(), 0u);
    EXPECT_EQ(shard.logBytes(), 0u);

    KvStatus get_st = KvStatus::Ok;
    shard.get(1, [&](PageBuffer, KvStatus st, std::uint64_t) {
        get_st = st;
    });
    sim.run();
    EXPECT_EQ(get_st, KvStatus::NotFound);
}

TEST(KvShard, ReadYourWritesDuringDoomedAppendThenRollback)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    shard.put(3, val(0xaa), [](KvStatus) {});
    sim.run();

    // A get issued while the (doomed) append is in flight serves
    // the new value from the memtable: ordinary read-your-writes of
    // a write that subsequently fails. After the failure the key
    // rolls back.
    armWriteFault(cluster, 0);
    shard.put(3, val(0xbb), [](KvStatus) {});
    PageBuffer during;
    shard.get(3, [&](PageBuffer v, KvStatus, std::uint64_t) {
        during = std::move(v);
    });
    sim.run();
    EXPECT_EQ(during, val(0xbb));

    PageBuffer after;
    shard.get(3, [&](PageBuffer v, KvStatus, std::uint64_t) {
        after = std::move(v);
    });
    sim.run();
    EXPECT_EQ(after, val(0xaa));
}

TEST(KvShard, DeleteTombstoneBlocksRollbackResurrection)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    shard.put(4, val(0xaa), [](KvStatus) {});
    sim.run();

    // Doomed overwrite, then a delete before the failure lands: the
    // failed append must not roll the key back to the (deleted)
    // 0xaa version.
    armWriteFault(cluster, 0);
    shard.put(4, val(0xbb), [](KvStatus) {});
    shard.del(4, [](KvStatus) {});
    sim.run();

    KvStatus get_st = KvStatus::Ok;
    shard.get(4, [&](PageBuffer, KvStatus st, std::uint64_t) {
        get_st = st;
    });
    sim.run();
    EXPECT_EQ(get_st, KvStatus::NotFound);
    EXPECT_FALSE(shard.contains(4));
}

// ---------------------------------------------------------------- //
// Hot-key read path: coalescing + conditional gets
// ---------------------------------------------------------------- //

TEST(KvShard, CoalescesConcurrentFlashReads)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    shard.put(5, val(0x55), [](KvStatus) {});
    sim.run(); // durable: memtable drained, reads go to flash

    int done = 0;
    for (int i = 0; i < 6; ++i) {
        shard.get(5, [&](PageBuffer v, KvStatus st, std::uint64_t) {
            EXPECT_EQ(st, KvStatus::Ok);
            EXPECT_EQ(v, val(0x55));
            ++done;
        });
    }
    sim.run();
    EXPECT_EQ(done, 6);
    // One flash read served all six: five joined the first.
    EXPECT_EQ(shard.coalescedGets(), 5u);
}

TEST(KvShard, ConditionalGetValidatesVersion)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    shard.put(9, val(0x99), [](KvStatus) {});
    sim.run();

    std::uint64_t version = 0;
    shard.get(9, [&](PageBuffer, KvStatus, std::uint64_t ver) {
        version = ver;
    });
    sim.run();
    ASSERT_NE(version, 0u);

    // Matching version: "not modified", no value bytes.
    PageBuffer got = val(0x01);
    KvStatus st = KvStatus::Error;
    std::uint64_t ver2 = 0;
    shard.getIfNewer(9, version,
                     [&](PageBuffer v, KvStatus s,
                         std::uint64_t ver) {
        got = std::move(v);
        st = s;
        ver2 = ver;
    });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(ver2, version);
    EXPECT_EQ(shard.validatedGets(), 1u);

    // After an overwrite the same conditional get returns the fresh
    // value and its new version.
    shard.put(9, val(0x9a), [](KvStatus) {});
    sim.run();
    shard.getIfNewer(9, version,
                     [&](PageBuffer v, KvStatus s,
                         std::uint64_t ver) {
        got = std::move(v);
        st = s;
        ver2 = ver;
    });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(got, val(0x9a));
    EXPECT_GT(ver2, version);
    EXPECT_EQ(shard.validatedGets(), 1u);
}

// ---------------------------------------------------------------- //
// Router hot-key cache
// ---------------------------------------------------------------- //

namespace {

kv::KvParams
cachedParams()
{
    kv::KvParams kp;
    kp.cacheSlots = 64;
    kp.cacheAdmitHits = 1; // admit on first fill (tests)
    return kp;
}

/** A key that origin 0 must read from a remote replica. */
Key
remoteKeyFor(kv::KvRouter &router, net::NodeId origin)
{
    Key key = 0;
    while (router.readReplica(origin, key) == origin)
        ++key;
    return key;
}

} // namespace

TEST(KvRouter, CacheServesValidatedHotKey)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, cachedParams());

    Key key = remoteKeyFor(router, 0);
    net::NodeId replica = router.readReplica(0, key);
    router.put(1, key, val(0x42), [](KvStatus) {});
    sim.run();

    // First get fetches and fills the cache; the second validates
    // and serves locally -- the replica's shard answers with an
    // O(1) index probe instead of a flash read.
    PageBuffer got;
    for (int i = 0; i < 2; ++i) {
        got.clear();
        router.get(0, key, [&](PageBuffer v, KvStatus st) {
            EXPECT_EQ(st, KvStatus::Ok);
            got = std::move(v);
        });
        sim.run();
        EXPECT_EQ(got, val(0x42)) << "get " << i;
    }
    EXPECT_EQ(router.cacheServedGets(), 1u);
    EXPECT_EQ(router.shard(replica).validatedGets(), 1u);
    ASSERT_NE(router.cache(0), nullptr);
    EXPECT_EQ(router.cache(0)->size(), 1u);
}

TEST(KvRouter, CacheNeverServesStaleAfterRemotePut)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, cachedParams());

    Key key = remoteKeyFor(router, 0);
    router.put(1, key, val(0x0a), [](KvStatus) {});
    sim.run();

    // Warm node 0's cache.
    for (int i = 0; i < 2; ++i) {
        router.get(0, key, [](PageBuffer, KvStatus) {});
        sim.run();
    }
    std::uint64_t served = router.cacheServedGets();
    EXPECT_GT(served, 0u);

    // Another node overwrites the key. Node 0's cached version is
    // now stale; the conditional get must self-detect and return
    // the fresh value, never the cached one.
    router.put(1, key, val(0x0b), [](KvStatus) {});
    sim.run();

    PageBuffer got;
    KvStatus st = KvStatus::Error;
    router.get(0, key, [&](PageBuffer v, KvStatus s) {
        got = std::move(v);
        st = s;
    });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(got, val(0x0b));
    EXPECT_GT(router.cacheStaleGets(), 0u);

    // The refilled entry validates again on the next get.
    router.get(0, key, [&](PageBuffer v, KvStatus) {
        got = std::move(v);
    });
    sim.run();
    EXPECT_EQ(got, val(0x0b));
    EXPECT_GT(router.cacheServedGets(), served);
}

TEST(KvRouter, CacheInvalidatesOnDelete)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, cachedParams());

    Key key = remoteKeyFor(router, 0);
    router.put(1, key, val(0x0c), [](KvStatus) {});
    sim.run();
    for (int i = 0; i < 2; ++i) {
        router.get(0, key, [](PageBuffer, KvStatus) {});
        sim.run();
    }
    ASSERT_NE(router.cache(0), nullptr);
    EXPECT_EQ(router.cache(0)->size(), 1u);

    router.del(2, key, [](KvStatus) {});
    sim.run();

    KvStatus st = KvStatus::Ok;
    router.get(0, key, [&](PageBuffer, KvStatus s) { st = s; });
    sim.run();
    EXPECT_EQ(st, KvStatus::NotFound);
    EXPECT_EQ(router.cache(0)->size(), 0u);
}

TEST(KvRouter, ReadYourWritesWithCacheEnabled)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, cachedParams());

    Key key = remoteKeyFor(router, 0);
    router.put(0, key, val(0x01), [](KvStatus) {});
    sim.run();
    for (int i = 0; i < 2; ++i) {
        router.get(0, key, [](PageBuffer, KvStatus) {});
        sim.run();
    }

    // The node that cached the key overwrites it; its own next get
    // must see the new value (the put invalidates the origin's
    // entry, and validation would catch it regardless).
    router.put(0, key, val(0x02), [](KvStatus) {});
    sim.run();
    PageBuffer got;
    router.get(0, key, [&](PageBuffer v, KvStatus st) {
        EXPECT_EQ(st, KvStatus::Ok);
        got = std::move(v);
    });
    sim.run();
    EXPECT_EQ(got, val(0x02));
}

// ---------------------------------------------------------------- //
// Partial write-all failure: divergence contract
// ---------------------------------------------------------------- //

TEST(KvRouter, DivergentWriteCountedAndContractHolds)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvParams kp;
    kp.cacheSlots = 0;  // isolate the replication behavior
    kp.writeQuorum = 2; // strict write-all: Ok = every copy landed
    kv::KvRouter router(sim, cluster, kp);

    const Key key = 42;
    auto own = router.owners(key);
    ASSERT_EQ(own.size(), 2u);
    router.put(own[0], key, val(0xaa), [](KvStatus) {});
    sim.run();

    // One replica's flash fails the overwrite: the write-all must
    // ack Error and count the divergence.
    armWriteFault(cluster, own[1]);
    KvStatus st = KvStatus::Ok;
    router.put(own[0], key, val(0xbb), [&](KvStatus s) { st = s; });
    sim.run();
    disarmWriteFault(cluster, own[1]);
    EXPECT_EQ(st, KvStatus::Error);
    EXPECT_EQ(router.divergentWrites(), 1u);

    // Documented contract: the failed replica rolled back to its
    // last durable version, the healthy one kept the new value, and
    // read-one returns whichever the origin's deterministic routing
    // picks -- but never garbage.
    for (unsigned origin = 0; origin < 4; ++origin) {
        net::NodeId replica =
            router.readReplica(net::NodeId(origin), key);
        PageBuffer got;
        KvStatus gst = KvStatus::Error;
        router.get(net::NodeId(origin), key,
                   [&](PageBuffer v, KvStatus s) {
            got = std::move(v);
            gst = s;
        });
        sim.run();
        EXPECT_EQ(gst, KvStatus::Ok) << "origin " << origin;
        EXPECT_EQ(got, replica == own[1] ? val(0xaa) : val(0xbb))
            << "origin " << origin << " replica " << replica;
    }

    // The sweep closes the window the failure opened: the stale
    // replica receives the newer-stamped value and the divergence
    // counter drains to zero.
    bool swept = false;
    router.repairSweep([&]() { swept = true; });
    sim.run();
    EXPECT_TRUE(swept);
    EXPECT_EQ(router.divergentWrites(), 0u);
    EXPECT_GE(router.repairedKeys(), 1u);
    for (unsigned origin = 0; origin < 4; ++origin) {
        PageBuffer got;
        router.get(net::NodeId(origin), key,
                   [&](PageBuffer v, KvStatus) {
            got = std::move(v);
        });
        sim.run();
        EXPECT_EQ(got, val(0xbb)) << "origin " << origin;
    }
}

// ---------------------------------------------------------------- //
// Quorum acks + in-flight ledger + anti-entropy repair
// ---------------------------------------------------------------- //

namespace {

kv::KvParams
quorumParams(unsigned w)
{
    kv::KvParams kp;
    kp.cacheSlots = 0; // isolate replication behavior
    kp.writeQuorum = w;
    return kp;
}

} // namespace

TEST(KvRouter, QuorumAckCompletesBeforeStragglers)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, quorumParams(1));

    const Key key = 42;
    auto own = router.owners(key);
    ASSERT_EQ(own.size(), 2u);

    // Put from the primary's own node: the local shard programs its
    // NAND while the remote replica still needs a network hop plus
    // its own program. W=1 completes the client on the local ack,
    // with the straggler tracked in the background.
    bool acked = false;
    unsigned bg_at_ack = 0;
    router.put(own[0], key, val(0xbb), [&](KvStatus st) {
        EXPECT_EQ(st, KvStatus::Ok);
        acked = true;
        bg_at_ack = router.backgroundWrites();
    });
    sim.run();
    EXPECT_TRUE(acked);
    // The op moved through the background phase (visible at ack
    // time, where the straggler had not yet reported)...
    EXPECT_EQ(bg_at_ack, 1u);
    EXPECT_GE(router.maxBackgroundWrites(), 1u);
    // ...and fully drained once the replica write completed.
    EXPECT_EQ(router.backgroundWrites(), 0u);
    for (net::NodeId n : own)
        EXPECT_TRUE(router.shard(n).contains(key));
    EXPECT_EQ(router.divergentWrites(), 0u);
}

TEST(KvRouter, ReadRacingBackgroundWriteReturnsAckedValue)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, quorumParams(1));

    const Key key = 42;
    auto own = router.owners(key);
    ASSERT_EQ(own.size(), 2u);
    router.put(own[0], key, val(0xaa), [](KvStatus) {});
    sim.run();

    // A writer homed on a NON-owner node whose deterministic read
    // routing would pick a replica that may still be a straggler.
    net::NodeId writer = 0;
    bool found = false;
    for (unsigned n = 0; n < 4 && !found; ++n) {
        if (router.readReplica(net::NodeId(n), key) == own[1]) {
            writer = net::NodeId(n);
            found = true;
        }
    }
    ASSERT_TRUE(found);
    // Another non-writing origin, for the scoping check below.
    net::NodeId bystander = writer;
    for (unsigned n = 0; n < 4; ++n) {
        if (net::NodeId(n) != writer &&
            std::find(own.begin(), own.end(), net::NodeId(n)) ==
                own.end())
            bystander = net::NodeId(n);
    }
    ASSERT_NE(bystander, writer);

    // Overwrite with W=1 from `writer` and read the key back the
    // moment the quorum ack fires -- while the other replica write
    // is still in the network or its NAND. The ledger must steer
    // the writer's read to a replica that applied the write; the
    // pre-write value may never surface after the ack.
    PageBuffer got;
    bool read_done = false;
    router.put(writer, key, val(0xbb), [&](KvStatus st) {
        EXPECT_EQ(st, KvStatus::Ok);
        EXPECT_EQ(router.backgroundWrites(), 1u);
        // Read-your-writes is per session (node-homed): only the
        // writer is steered; a bystander keeps the deterministic
        // spread so hot-key reads never funnel onto one replica.
        EXPECT_EQ(router.readReplica(bystander, key),
                  own[bystander % 2]);
        router.get(writer, key, [&](PageBuffer v, KvStatus s) {
            EXPECT_EQ(s, KvStatus::Ok);
            got = std::move(v);
            read_done = true;
        });
    });
    sim.run();
    EXPECT_TRUE(read_done);
    EXPECT_EQ(got, val(0xbb));
    // Ledger drained with the background write; routing is back to
    // the plain deterministic choice.
    EXPECT_EQ(router.backgroundWrites(), 0u);
    EXPECT_EQ(router.readReplica(writer, key), own[1]);
}

TEST(KvRouter, QuorumFailedStragglerHealsViaAntiEntropy)
{
    // The ISSUE-4 acceptance scenario: a W=1 put whose straggler
    // program fails must ack Ok, leave a counted divergence, and
    // heal to zero under a repair sweep -- deterministically, with
    // the fault injected at the flash server.
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, quorumParams(1));

    const Key key = 42;
    auto own = router.owners(key);
    ASSERT_EQ(own.size(), 2u);
    router.put(own[0], key, val(0xaa), [](KvStatus) {});
    sim.run();

    armWriteFault(cluster, own[1]);
    KvStatus st = KvStatus::Error;
    router.put(own[0], key, val(0xbb), [&](KvStatus s) { st = s; });
    sim.run();
    disarmWriteFault(cluster, own[1]);

    // Quorum reached on the primary: the client saw Ok even though
    // the straggler failed afterwards...
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(router.shard(own[1]).failedPuts(), 1u);
    // ...and the divergence is on the books.
    EXPECT_EQ(router.divergentWrites(), 1u);

    bool swept = false;
    router.repairSweep([&]() { swept = true; });
    sim.run();
    EXPECT_TRUE(swept);
    EXPECT_EQ(router.divergentWrites(), 0u);
    EXPECT_GE(router.shard(own[1]).repairsApplied(), 1u);

    // Every origin now reads the acked value from every replica.
    for (unsigned origin = 0; origin < 4; ++origin) {
        PageBuffer got;
        KvStatus gst = KvStatus::Error;
        router.get(net::NodeId(origin), key,
                   [&](PageBuffer v, KvStatus s) {
            got = std::move(v);
            gst = s;
        });
        sim.run();
        EXPECT_EQ(gst, KvStatus::Ok) << "origin " << origin;
        EXPECT_EQ(got, val(0xbb)) << "origin " << origin;
    }
}

TEST(KvRouter, RepairSweepNoopOnConsistentCluster)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, quorumParams(1));

    for (Key k = 0; k < 64; ++k) {
        router.put(net::NodeId(k % 4), k, val(std::uint8_t(k), 32),
                   [](KvStatus) {});
    }
    sim.run();

    // Replicas hold identical (key, stamp) content, so every range
    // digest matches and the sweep pushes nothing.
    bool swept = false;
    router.repairSweep([&]() { swept = true; });
    sim.run();
    EXPECT_TRUE(swept);
    EXPECT_EQ(router.repairedKeys(), 0u);
    EXPECT_EQ(router.repairSweeps(), 1u);
}

TEST(KvRouter, RepairSweepPrunesSettledTombstones)
{
    // Deletes leave tombstones in every replica's repair index so
    // partial deletes converge; once a sweep sees the range
    // digest-identical with no writes in flight, those tombstones
    // are settled history and must be dropped everywhere at once
    // -- otherwise delete churn grows the index without bound.
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, quorumParams(1));

    for (Key k = 0; k < 32; ++k)
        router.put(net::NodeId(k % 4), k, val(std::uint8_t(k), 32),
                   [](KvStatus) {});
    sim.run();
    for (Key k = 0; k < 16; ++k)
        router.del(net::NodeId(k % 4), k, [](KvStatus) {});
    sim.run();

    std::size_t before = 0;
    for (unsigned n = 0; n < 4; ++n)
        before += router.shard(net::NodeId(n)).repairIndexSize();

    bool swept = false;
    router.repairSweep([&]() { swept = true; });
    sim.run();
    EXPECT_TRUE(swept);

    // 16 deleted keys x R=2 tombstones pruned; the 16 live keys'
    // entries stay.
    std::size_t after = 0, live = 0;
    for (unsigned n = 0; n < 4; ++n) {
        after += router.shard(net::NodeId(n)).repairIndexSize();
        live += router.shard(net::NodeId(n)).keyCount();
    }
    EXPECT_EQ(before - after, 32u);
    EXPECT_EQ(after, live);
    EXPECT_EQ(router.repairedKeys(), 0u); // pruning is not repair
}

TEST(KvRouter, RepairHealsNonPrimaryDivergenceAtR3)
{
    // Regression: the sweep must reconcile ALL replicas of a
    // segment against the newest-stamped state, wherever it lives.
    // With R=3 and the newest copy on a NON-primary replica
    // (primary + third replica both failed their programs), a
    // pairwise primary-vs-others comparison would pull the primary
    // up but find primary == third replica "consistent" and leave
    // the third stale.
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvParams kp;
    kp.cacheSlots = 0;
    kp.writeQuorum = 1;
    kp.replication = 3;
    kv::KvRouter router(sim, cluster, kp);

    const Key key = 42;
    auto own = router.owners(key);
    ASSERT_EQ(own.size(), 3u);
    router.put(own[0], key, val(0xaa), [](KvStatus) {});
    sim.run();

    // Fail programs on the primary and the third replica: only
    // own[1] applies the overwrite, and W=1 still acks Ok.
    armWriteFault(cluster, own[0]);
    armWriteFault(cluster, own[2]);
    KvStatus st = KvStatus::Error;
    router.put(own[1], key, val(0xbb), [&](KvStatus s) { st = s; });
    sim.run();
    disarmWriteFault(cluster, own[0]);
    disarmWriteFault(cluster, own[2]);
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(router.divergentWrites(), 1u);

    bool swept = false;
    router.repairSweep([&]() { swept = true; });
    sim.run();
    EXPECT_TRUE(swept);
    EXPECT_EQ(router.divergentWrites(), 0u);

    // EVERY replica -- including the equally-stale third one --
    // now serves the acked value.
    for (net::NodeId n : own) {
        PageBuffer got;
        router.shard(n).get(key, [&](PageBuffer v, KvStatus s,
                                     std::uint64_t) {
            EXPECT_EQ(s, KvStatus::Ok);
            got = std::move(v);
        });
        sim.run();
        EXPECT_EQ(got, val(0xbb)) << "replica " << n;
    }
}

TEST(KvRouter, RepairHealsDivergentDelete)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, quorumParams(2));

    const Key key = 42;
    auto own = router.owners(key);
    router.put(own[0], key, val(0xaa), [](KvStatus) {});
    sim.run();

    // Delete the key on one replica only, behind the router's back
    // (simulating the observable end state of a partial delete,
    // whose tombstone carries the delete's newer router stamp):
    // the replicas disagree about the key's existence.
    router.shard(own[1]).del(key, /*stamp=*/1000, [](KvStatus) {});
    sim.run();
    EXPECT_TRUE(router.shard(own[0]).contains(key));
    EXPECT_FALSE(router.shard(own[1]).contains(key));

    // The sweep compares stamps: the tombstone is newer, so the
    // delete propagates to the replica that still has the value.
    bool swept = false;
    router.repairSweep([&]() { swept = true; });
    sim.run();
    EXPECT_TRUE(swept);
    EXPECT_FALSE(router.shard(own[0]).contains(key));
    EXPECT_FALSE(router.shard(own[1]).contains(key));
}

TEST(KvRouter, PeriodicRepairSweepDrainsDivergenceUnattended)
{
    // With KvParams::repairIntervalUs set, the router schedules its
    // own anti-entropy sweeps: injected divergence must drain to
    // zero with no manual repairSweep() call. The armed timer keeps
    // the event queue alive, so the test drives time with
    // runUntil().
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvParams kp = quorumParams(1);
    kp.repairIntervalUs = 20000;
    kv::KvRouter router(sim, cluster, kp);

    const Key key = 42;
    auto own = router.owners(key);
    ASSERT_EQ(own.size(), 2u);
    router.put(own[0], key, val(0xaa), [](KvStatus) {});
    sim.runUntil(sim::usToTicks(5000));

    armWriteFault(cluster, own[1]);
    KvStatus st = KvStatus::Error;
    router.put(own[0], key, val(0xbb), [&](KvStatus s) { st = s; });
    sim.runUntil(sim::usToTicks(10000));
    disarmWriteFault(cluster, own[1]);

    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(router.divergentWrites(), 1u);
    EXPECT_EQ(router.repairSweeps(), 0u);

    // Two intervals later the scheduled sweep has visited the key.
    sim.runUntil(sim::usToTicks(60000));
    EXPECT_GE(router.repairSweeps(), 1u);
    EXPECT_EQ(router.divergentWrites(), 0u);
    EXPECT_GE(router.shard(own[1]).repairsApplied(), 1u);

    // The healed value serves from every replica.
    for (unsigned origin = 0; origin < 4; ++origin) {
        PageBuffer got;
        KvStatus gst = KvStatus::Error;
        router.get(net::NodeId(origin), key,
                   [&](PageBuffer v, KvStatus s) {
            got = std::move(v);
            gst = s;
        });
        sim.runUntil(sim.now() + sim::usToTicks(5000));
        EXPECT_EQ(gst, KvStatus::Ok) << "origin " << origin;
        EXPECT_EQ(got, val(0xbb)) << "origin " << origin;
    }
}

TEST(KvRouter, OverlappingRepairSweepsCoalesce)
{
    // A repairSweep() call landing while another sweep is running
    // (the periodic timer's, or another caller's) must not abort:
    // it queues, and a follow-up full pass fires its callback.
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, quorumParams(1));
    router.put(net::NodeId(0), 7, val(0x11), [](KvStatus) {});
    sim.run();

    bool first = false, second = false;
    router.repairSweep([&]() { first = true; });
    router.repairSweep([&]() { second = true; });
    sim.run();
    EXPECT_TRUE(first);
    EXPECT_TRUE(second);
    EXPECT_EQ(router.repairSweeps(), 2u);
    EXPECT_EQ(router.divergentWrites(), 0u);
}

// ---------------------------------------------------------------- //
// Elastic membership: failure detection, crash + rebuild, join/leave
// ---------------------------------------------------------------- //

namespace {

/** Tight detection knobs so membership tests run in simulated
 * milliseconds: short per-request timeouts, one-strike suspicion,
 * short death grace. */
kv::KvParams
memberParams(unsigned w, std::uint64_t timeout_us = 500,
             unsigned suspect_after = 1,
             std::uint64_t grace_us = 500)
{
    kv::KvParams kp;
    kp.cacheSlots = 0; // isolate routing + membership behavior
    kp.writeQuorum = w;
    kp.readTimeoutUs = timeout_us;
    kp.writeTimeoutUs = timeout_us;
    kp.readRetries = 2;
    kp.suspectAfter = suspect_after;
    kp.deadGraceUs = grace_us;
    return kp;
}

/** A (key, origin) pair whose deterministic read replica is the
 * key's PRIMARY and whose origin is not itself an owner -- so the
 * read is remote and fails over visibly when the primary dies. */
void
findRemotePrimaryRead(kv::KvRouter &router, unsigned nodes,
                      kv::Key &key, net::NodeId &origin)
{
    for (kv::Key k = 1; k < 256; ++k) {
        auto own = router.owners(k);
        for (unsigned n = 0; n < nodes; ++n) {
            net::NodeId cand(n);
            if (std::find(own.begin(), own.end(), cand) !=
                own.end())
                continue;
            if (router.readReplica(cand, k) == own[0]) {
                key = k;
                origin = cand;
                return;
            }
        }
    }
    FAIL() << "no remote-primary (key, origin) pair found";
}

} // namespace

TEST(KvRouter, DtorWithInflightQuorumWritesIsSafe)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    {
        kv::KvRouter router(sim, cluster, quorumParams(1));
        for (Key k = 0; k < 16; ++k) {
            router.put(net::NodeId(k % 4), k, val(0x5a),
                       [](KvStatus) {});
        }
        // Give the quorum acks a head start while straggler
        // replica writes and their ledger entries are still open...
        sim.runUntil(sim::usToTicks(30));
        // ...then tear the router down mid-operation.
    }
    // The cluster's file systems still hold append continuations
    // and response messages addressed to the dead router; draining
    // them must be a no-op, not a use-after-free.
    sim.run();
}

TEST(KvRouter, ReadFailsOverAfterNodeKill)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster,
                        memberParams(2, 500, 2, 1500));

    Key key = 0;
    net::NodeId origin = 0;
    findRemotePrimaryRead(router, 4, key, origin);
    auto own = router.owners(key);
    router.put(own[0], key, val(0xcd), [](KvStatus) {});
    sim.run();

    router.killNode(own[0]);

    // First read: addressed to the (undetected) dead primary,
    // times out, retries the surviving replica, serves the value.
    PageBuffer got;
    KvStatus st = KvStatus::Error;
    router.get(origin, key, [&](PageBuffer v, KvStatus s) {
        got = std::move(v);
        st = s;
    });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(got, val(0xcd));
    EXPECT_GE(router.readTimeouts(), 1u);
    EXPECT_GE(router.retriedReads(), 1u);
    // One timeout: below the suspicion threshold of 2.
    EXPECT_EQ(router.member(own[0]), kv::MemberState::Live);

    // Second read: the second consecutive timeout marks the node
    // Suspect, and the grace period (drained by run()) buries it.
    router.get(origin, key, [&](PageBuffer v, KvStatus s) {
        got = std::move(v);
        st = s;
    });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(got, val(0xcd));
    EXPECT_GE(router.suspectTransitions(), 1u);
    EXPECT_EQ(router.deadTransitions(), 1u);
    EXPECT_EQ(router.member(own[0]), kv::MemberState::Dead);
    EXPECT_EQ(router.liveNodes(), 3u);

    // Third read: Dead replicas are routed around up front -- no
    // timeout, no retry, just the surviving replica.
    std::uint64_t timeouts = router.readTimeouts();
    router.get(origin, key, [&](PageBuffer v, KvStatus s) {
        got = std::move(v);
        st = s;
    });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(got, val(0xcd));
    EXPECT_EQ(router.readTimeouts(), timeouts);
}

TEST(KvRouter, KillRebuildDrainsDivergence)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, memberParams(1));

    const Key key = 7;
    auto own = router.owners(key);
    router.put(own[0], key, val(0xaa), [](KvStatus) {});
    sim.run();

    router.killNode(own[1]);

    // Write into the crash window: the quorum-of-1 ack comes from
    // the primary, the dead replica's slot times out, the key is
    // marked divergent, and detection buries the replica.
    KvStatus st = KvStatus::Error;
    router.put(own[0], key, val(0xbb),
               [&](KvStatus s) { st = s; });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_GE(router.writeTimeouts(), 1u);
    EXPECT_EQ(router.divergentWrites(), 1u);
    EXPECT_EQ(router.member(own[1]), kv::MemberState::Dead);

    // A sweep with the replica still dead compares what it can but
    // must NOT clear the divergence mark: the dead replica has not
    // been reconciled.
    bool swept = false;
    router.repairSweep([&]() { swept = true; });
    sim.run();
    EXPECT_TRUE(swept);
    EXPECT_EQ(router.divergentWrites(), 1u);

    // Restart + rebuild: Joining (written, not read) until the
    // rebuild sweep streams it back to currency, then Live with
    // the divergence drained.
    router.reviveNode(own[1]);
    EXPECT_EQ(router.member(own[1]), kv::MemberState::Joining);
    bool rebuilt = false;
    router.rebuildNode(own[1], [&]() { rebuilt = true; });
    sim.run();
    EXPECT_TRUE(rebuilt);
    EXPECT_EQ(router.member(own[1]), kv::MemberState::Live);
    EXPECT_EQ(router.divergentWrites(), 0u);
    EXPECT_EQ(router.liveNodes(), 4u);

    // Both replicas now serve the value written while it was dead,
    // whichever one read-one picks.
    for (unsigned o = 0; o < 4; ++o) {
        PageBuffer got;
        router.get(net::NodeId(o), key,
                   [&](PageBuffer v, KvStatus) {
            got = std::move(v);
        });
        sim.run();
        EXPECT_EQ(got, val(0xbb)) << "origin " << o;
    }
}

TEST(KvRouter, WriteQuorumClampsToLiveReplicas)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, memberParams(2));

    const Key key = 11;
    auto own = router.owners(key);
    router.put(own[0], key, val(0xaa), [](KvStatus) {});
    sim.run();

    // Undetected crash: the write-all still addresses the dead
    // replica, times out, and fails the W=2 quorum.
    router.killNode(own[1]);
    KvStatus st = KvStatus::Ok;
    router.put(own[0], key, val(0xbb),
               [&](KvStatus s) { st = s; });
    sim.run();
    EXPECT_EQ(st, KvStatus::Error);
    EXPECT_EQ(router.member(own[1]), kv::MemberState::Dead);

    // Detected: the quorum clamps to the one live owner, the write
    // acks Ok, and the exposure is counted.
    router.put(own[0], key, val(0xcc),
               [&](KvStatus s) { st = s; });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_GE(router.degradedWrites(), 1u);
    EXPECT_GE(router.divergentWrites(), 1u);

    // Reads divert around the dead owner and serve the clamped
    // write's value. (Not from the dead node itself: a crashed
    // node has no clients -- a local read there would see its own
    // stale shard, which is why WorkloadEngine::pauseNode exists.)
    for (unsigned o = 0; o < 4; ++o) {
        if (net::NodeId(o) == own[1])
            continue;
        PageBuffer got;
        KvStatus gst = KvStatus::Error;
        router.get(net::NodeId(o), key,
                   [&](PageBuffer v, KvStatus s) {
            got = std::move(v);
            gst = s;
        });
        sim.run();
        EXPECT_EQ(gst, KvStatus::Ok) << "origin " << o;
        EXPECT_EQ(got, val(0xcc)) << "origin " << o;
    }

    // Kill the last owner too: once detection buries it, a write
    // with no addressable owner fails outright.
    router.killNode(own[0]);
    router.put(own[1], key, val(0xdd),
               [&](KvStatus s) { st = s; });
    sim.run();
    EXPECT_EQ(st, KvStatus::Error);
    EXPECT_EQ(router.member(own[0]), kv::MemberState::Dead);
    router.put(own[1], key, val(0xee),
               [&](KvStatus s) { st = s; });
    sim.run();
    EXPECT_EQ(st, KvStatus::Error);
}

TEST(KvRouter, SuspectRecoversOnLateResponse)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    // Long grace: the node must survive long enough for its late
    // response to prove it alive.
    kv::KvRouter router(sim, cluster,
                        memberParams(1, 500, 1, 100000));

    Key key = 0;
    net::NodeId origin = 0;
    findRemotePrimaryRead(router, 4, key, origin);
    auto own = router.owners(key);
    router.put(own[0], key, val(0xab), [](KvStatus) {});
    sim.run();

    // The primary is slow, not dead: hold every flash read on it
    // well past the request timeout.
    for (unsigned card = 0; card < 2; ++card) {
        cluster.node(own[0]).hostServer(card).setReadFault(
            [](const flash::Address &) {
            flash::FlashServer::ReadFaultAction act;
            act.delayTicks = sim::usToTicks(2000);
            return act;
        });
    }

    PageBuffer got;
    KvStatus st = KvStatus::Error;
    router.get(origin, key, [&](PageBuffer v, KvStatus s) {
        got = std::move(v);
        st = s;
    });
    sim.run();

    // The read failed over and served; the straggling response
    // landed after its request was retired -- counted, dropped,
    // and taken as proof of life: the node is Live again.
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(got, val(0xab));
    EXPECT_GE(router.retriedReads(), 1u);
    EXPECT_GE(router.suspectTransitions(), 1u);
    EXPECT_GE(router.lateResponses(), 1u);
    EXPECT_EQ(router.member(own[0]), kv::MemberState::Live);
    EXPECT_EQ(router.deadTransitions(), 0u);

    for (unsigned card = 0; card < 2; ++card)
        cluster.node(own[0]).hostServer(card).setReadFault(nullptr);
}

TEST(KvRouter, JoinExpandsRingAndServes)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvParams kp;
    kp.cacheSlots = 0;
    kp.activeNodes = 3; // node 3 built but outside the ring
    kv::KvRouter router(sim, cluster, kp);

    EXPECT_EQ(router.member(net::NodeId(3)),
              kv::MemberState::Standby);
    EXPECT_EQ(router.liveNodes(), 3u);

    const Key keys = 48;
    std::vector<std::uint8_t> fill(keys);
    for (Key k = 0; k < keys; ++k) {
        fill[k] = std::uint8_t(k);
        router.put(net::NodeId(k % 3), k, val(fill[k]),
                   [](KvStatus) {});
    }
    sim.run();
    for (Key k = 0; k < keys; ++k) {
        auto own = router.owners(k);
        EXPECT_EQ(std::count(own.begin(), own.end(),
                             net::NodeId(3)), 0)
            << "standby node owns key " << k;
    }

    // Expand onto node 3, with writes racing the two-phase
    // handoff (they dual-write to the union of old and new
    // owners, so the flip loses nothing).
    bool joined = false;
    router.joinNode(net::NodeId(3), [&]() { joined = true; });
    for (Key k = 0; k < 8; ++k) {
        fill[k] = std::uint8_t(0xe0 + k);
        router.put(net::NodeId(k % 3), k, val(fill[k]),
                   [](KvStatus) {});
    }
    sim.run();

    EXPECT_TRUE(joined);
    EXPECT_EQ(router.member(net::NodeId(3)),
              kv::MemberState::Live);
    EXPECT_EQ(router.liveNodes(), 4u);
    EXPECT_EQ(router.ringEpoch(), 1u);
    EXPECT_GT(router.movedKeys(), 0u);
    EXPECT_GT(router.shard(net::NodeId(3)).keyCount(), 0u);

    bool owns_any = false;
    for (Key k = 0; k < keys && !owns_any; ++k) {
        auto own = router.owners(k);
        owns_any = std::count(own.begin(), own.end(),
                              net::NodeId(3)) != 0;
    }
    EXPECT_TRUE(owns_any);

    // Every key serves its latest value from every origin.
    for (Key k = 0; k < keys; ++k) {
        for (unsigned o = 0; o < 4; ++o) {
            PageBuffer got;
            KvStatus st = KvStatus::Error;
            router.get(net::NodeId(o), k,
                       [&](PageBuffer v, KvStatus s) {
                got = std::move(v);
                st = s;
            });
            sim.run();
            EXPECT_EQ(st, KvStatus::Ok)
                << "key " << k << " origin " << o;
            EXPECT_EQ(got, val(fill[k]))
                << "key " << k << " origin " << o;
        }
    }
    EXPECT_EQ(router.divergentWrites(), 0u);
}

TEST(KvRouter, LeaveDrainsNodeAndServes)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvParams kp;
    kp.cacheSlots = 0;
    kv::KvRouter router(sim, cluster, kp);

    const Key keys = 48;
    std::vector<std::uint8_t> fill(keys);
    for (Key k = 0; k < keys; ++k) {
        fill[k] = std::uint8_t(k);
        router.put(net::NodeId(k % 4), k, val(fill[k]),
                   [](KvStatus) {});
    }
    sim.run();

    // Drain node 2 out of the ring, with writes racing the
    // handoff.
    bool left = false;
    router.leaveNode(net::NodeId(2), [&]() { left = true; });
    for (Key k = 0; k < 8; ++k) {
        fill[k] = std::uint8_t(0xd0 + k);
        router.put(net::NodeId(k % 4), k, val(fill[k]),
                   [](KvStatus) {});
    }
    sim.run();

    EXPECT_TRUE(left);
    EXPECT_EQ(router.member(net::NodeId(2)),
              kv::MemberState::Standby);
    EXPECT_EQ(router.liveNodes(), 3u);
    EXPECT_EQ(router.ringEpoch(), 1u);
    EXPECT_GT(router.movedKeys(), 0u);
    for (Key k = 0; k < keys; ++k) {
        auto own = router.owners(k);
        EXPECT_EQ(std::count(own.begin(), own.end(),
                             net::NodeId(2)), 0)
            << "departed node owns key " << k;
    }

    // Every key serves from every origin -- including the departed
    // node, which remains a valid requester.
    for (Key k = 0; k < keys; ++k) {
        for (unsigned o = 0; o < 4; ++o) {
            PageBuffer got;
            KvStatus st = KvStatus::Error;
            router.get(net::NodeId(o), k,
                       [&](PageBuffer v, KvStatus s) {
                got = std::move(v);
                st = s;
            });
            sim.run();
            EXPECT_EQ(st, KvStatus::Ok)
                << "key " << k << " origin " << o;
            EXPECT_EQ(got, val(fill[k]))
                << "key " << k << " origin " << o;
        }
    }
    EXPECT_EQ(router.divergentWrites(), 0u);
}

TEST(KvService, OverloadedRejectionCarriesRetryAfterHint)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvRouter router(sim, cluster);
    kv::KvService service(sim, router);

    kv::KvService::ClientParams cp;
    cp.window = 1;
    cp.queueCap = 2;
    cp.retryBaseUs = 20;
    auto client = service.addClient(net::NodeId(0), cp);
    EXPECT_EQ(service.retryAfterUs(client), 0u);

    unsigned rejected = 0;
    for (int i = 0; i < 8; ++i) {
        service.get(client, Key(i),
                    [&](PageBuffer, KvStatus st) {
            if (st == KvStatus::Overloaded)
                ++rejected;
        });
    }
    sim.run();
    EXPECT_GT(rejected, 0u);
    // Rejections happened at a full queue (2 ops = 2 windows of
    // backlog): base * (1 + 2/1).
    EXPECT_EQ(service.retryAfterUs(client), 60u);
}

// ---------------------------------------------------------------- //
// Aged flash: corrupt-read heal + capacity-pressure shedding
// ---------------------------------------------------------------- //

namespace {

/**
 * Append page-sized ballast to @p fs until its free-block red line
 * trips. Stops AT underPressure() -- pushing further would park
 * appends on the cleaner's reserve and never complete.
 */
bool
fillToPressure(sim::Simulator &sim, fs::LogFs &fs)
{
    if (!fs.create("ballast"))
        return false;
    std::vector<std::uint8_t> chunk(512, 0xb5);
    for (int i = 0; i < 4096 && !fs.underPressure(); ++i) {
        bool ok = false;
        fs.append("ballast", chunk, [&](bool s) { ok = s; });
        sim.run();
        if (!ok)
            return false;
    }
    return fs.underPressure();
}

} // namespace

TEST(KvRouter, CorruptLocalReadHealsFromReplica)
{
    // The read-path heal ladder end to end: an uncorrectable local
    // read marks the key corrupt, the client is served from the
    // surviving replica, and the healthy bytes are pushed back into
    // the corrupt shard under the replica's stamp.
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvParams kp;
    kp.cacheSlots = 0; // isolate the heal path
    kv::KvRouter router(sim, cluster, kp);

    const Key key = 42;
    auto own = router.owners(key);
    ASSERT_EQ(own.size(), 2u);
    // An owner origin reads its own shard: the local-read heal path.
    ASSERT_EQ(router.readReplica(own[0], key), own[0]);
    router.put(own[0], key, val(0xaa), [](KvStatus) {});
    sim.run();

    // Every sense on the primary's fs flash comes back
    // uncorrectable: the durable local copy is gone for good.
    cluster.node(own[0]).hostServer(0).setReadFault(
        [](const flash::Address &) {
        flash::FlashServer::ReadFaultAction act;
        act.uncorrectable = true;
        return act;
    });

    PageBuffer got;
    KvStatus st = KvStatus::Error;
    router.get(own[0], key, [&](PageBuffer v, KvStatus s) {
        got = std::move(v);
        st = s;
    });
    sim.run();

    // The client never saw the corruption: the replica served it.
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(got, val(0xaa));
    EXPECT_EQ(router.localCorruptions(), 1u);
    EXPECT_GE(router.shard(own[0]).corruptKeys(), 1u);

    // The write-back heal re-appended the value locally (writes are
    // unaffected by the read fault), clearing the corrupt mark.
    cluster.node(own[0]).hostServer(0).setReadFault(nullptr);
    sim.run();
    EXPECT_EQ(router.shard(own[0]).corruptKeyCount(), 0u);

    // The healed local copy serves again, no replica detour.
    got.clear();
    st = KvStatus::Error;
    router.get(own[0], key, [&](PageBuffer v, KvStatus s) {
        got = std::move(v);
        st = s;
    });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(got, val(0xaa));
    EXPECT_EQ(router.localCorruptions(), 1u);
}

TEST(KvShard, PutShedsAtRedLineWhileRepairStillLands)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    fs::LogFs &fs = cluster.node(0).fs();
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    ASSERT_TRUE(fillToPressure(sim, fs));
    ASSERT_FALSE(fs.exhausted());

    // Serving put: shed with Pressure at the red line, nothing
    // written, nothing rolled back.
    KvStatus st = KvStatus::Ok;
    shard.put(7, val(0x07), [&](KvStatus s) { st = s; });
    sim.run();
    EXPECT_EQ(st, KvStatus::Pressure);
    EXPECT_EQ(shard.pressuredPuts(), 1u);
    EXPECT_FALSE(shard.contains(7));

    // Maintenance write (anti-entropy push): Background class sheds
    // only at exhaustion, so healing proceeds under the same
    // pressure that rejects new client data.
    KvStatus rst = KvStatus::Error;
    shard.repairPut(9, val(0x09), /*stamp=*/1000,
                    [&](KvStatus s) { rst = s; });
    sim.run();
    EXPECT_EQ(rst, KvStatus::Ok);
    EXPECT_TRUE(shard.contains(9));

    // Reads never block on capacity: the repaired key serves.
    PageBuffer got;
    shard.get(9, [&](PageBuffer v, KvStatus, std::uint64_t) {
        got = std::move(v);
    });
    sim.run();
    EXPECT_EQ(got, val(0x09));
}

TEST(KvService, PressureSurfacesAsOverloadedWithRetryAfter)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvParams kp;
    kp.cacheSlots = 0;
    kp.replication = 1; // one owner: its red line decides the put
    kv::KvRouter router(sim, cluster, kp);
    kv::KvService service(sim, router);

    const Key key = 42;
    net::NodeId owner = router.owners(key)[0];
    auto client = service.addClient(owner);
    EXPECT_EQ(service.retryAfterUs(client), 0u);

    // Store the key while capacity is healthy...
    KvStatus st = KvStatus::Error;
    service.put(client, key, val(0xaa),
                [&](KvStatus s) { st = s; });
    sim.run();
    ASSERT_EQ(st, KvStatus::Ok);

    // ...then trip the owner's red line and overwrite: the shard's
    // Pressure surfaces to the client as the standard Overloaded +
    // retry-after contract, sized for block reclaim.
    ASSERT_TRUE(fillToPressure(sim, cluster.node(owner).fs()));
    service.put(client, key, val(0xbb),
                [&](KvStatus s) { st = s; });
    sim.run();
    EXPECT_EQ(st, KvStatus::Overloaded);
    EXPECT_EQ(service.pressureRejects(), 1u);
    EXPECT_EQ(service.retryAfterUs(client), 500u);

    // Degraded, not down: reads still serve the durable value.
    PageBuffer got;
    KvStatus gst = KvStatus::Error;
    service.get(client, key, [&](PageBuffer v, KvStatus s) {
        got = std::move(v);
        gst = s;
    });
    sim.run();
    EXPECT_EQ(gst, KvStatus::Ok);
    EXPECT_EQ(got, val(0xaa));
}
