/**
 * @file
 * Unit and integration tests for the sharded key-value service:
 * shard storage semantics, consistent-hash routing with
 * replication, and the admission-controlled front-end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/cluster.hh"
#include "kv/kv_router.hh"
#include "kv/kv_service.hh"
#include "kv/kv_shard.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using flash::PageBuffer;
using kv::Key;
using kv::KvStatus;

namespace {

core::ClusterParams
kvCluster(unsigned nodes)
{
    core::ClusterParams p;
    p.topology = nodes == 2 ? net::Topology::line(2)
                            : net::Topology::ring(nodes, 2);
    p.node.geometry = flash::Geometry::tiny();
    p.node.timing = flash::Timing::fast();
    p.node.cards = 2;
    p.node.controllerTags = 64;
    p.network.endpoints = kv::kvRequiredEndpoints;
    return p;
}

PageBuffer
val(std::uint8_t fill, std::size_t n = 64)
{
    return PageBuffer(n, fill);
}

} // namespace

// ---------------------------------------------------------------- //
// KvShard
// ---------------------------------------------------------------- //

TEST(KvShard, PutGetRoundTrip)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    bool put_ok = false;
    shard.put(7, val(0xaa), [&](KvStatus st) {
        put_ok = st == KvStatus::Ok;
    });
    sim.run();
    EXPECT_TRUE(put_ok);
    EXPECT_TRUE(shard.contains(7));
    EXPECT_EQ(shard.keyCount(), 1u);

    PageBuffer got;
    KvStatus st = KvStatus::Error;
    shard.get(7, [&](PageBuffer v, KvStatus s) {
        got = std::move(v);
        st = s;
    });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(got, val(0xaa));
}

TEST(KvShard, ReadYourWritesBeforeDurable)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    // Get issued immediately after put, before the log append has
    // any chance to reach flash: served from the memtable.
    shard.put(1, val(0x11), [](KvStatus) {});
    PageBuffer got;
    shard.get(1, [&](PageBuffer v, KvStatus) { got = std::move(v); });
    sim.run();
    EXPECT_EQ(got, val(0x11));
    EXPECT_GE(shard.memtableHits(), 1u);

    // After the append is durable the memtable entry retires and
    // the value comes back from flash.
    PageBuffer again;
    shard.get(1, [&](PageBuffer v, KvStatus) { again = std::move(v); });
    sim.run();
    EXPECT_EQ(again, val(0x11));
    EXPECT_EQ(shard.memtableHits(), 1u);
}

TEST(KvShard, OverwriteReturnsLatest)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    shard.put(3, val(0x01), [](KvStatus) {});
    sim.run();
    shard.put(3, val(0x02), [](KvStatus) {});
    sim.run();
    PageBuffer got;
    shard.get(3, [&](PageBuffer v, KvStatus) { got = std::move(v); });
    sim.run();
    EXPECT_EQ(got, val(0x02));
    EXPECT_EQ(shard.keyCount(), 1u);
    EXPECT_EQ(shard.liveBytes(), 64u);
    EXPECT_GT(shard.logBytes(), shard.liveBytes());
}

TEST(KvShard, DeleteThenMiss)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    shard.put(5, val(0x05), [](KvStatus) {});
    sim.run();
    KvStatus del_st = KvStatus::Error;
    shard.del(5, [&](KvStatus st) { del_st = st; });
    sim.run();
    EXPECT_EQ(del_st, KvStatus::Ok);
    EXPECT_FALSE(shard.contains(5));

    KvStatus get_st = KvStatus::Ok;
    shard.get(5, [&](PageBuffer, KvStatus st) { get_st = st; });
    KvStatus del2_st = KvStatus::Ok;
    shard.del(5, [&](KvStatus st) { del2_st = st; });
    sim.run();
    EXPECT_EQ(get_st, KvStatus::NotFound);
    EXPECT_EQ(del2_st, KvStatus::NotFound);
}

TEST(KvShard, DeleteAndReputWhileAppendInFlight)
{
    // Regression: a still-in-flight append of the key's previous
    // life must not retire the new life's memtable entry.
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvShard shard(sim, cluster.node(0).fs(), "t");

    shard.put(9, val(0x0a), [](KvStatus) {});
    shard.del(9, [](KvStatus) {});
    shard.put(9, val(0x0b), [](KvStatus) {});
    sim.run();

    PageBuffer got;
    KvStatus st = KvStatus::Error;
    shard.get(9, [&](PageBuffer v, KvStatus s) {
        got = std::move(v);
        st = s;
    });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(got, val(0x0b));
}

// ---------------------------------------------------------------- //
// KvRouter
// ---------------------------------------------------------------- //

TEST(KvRouter, OwnersAreDeterministicAndDistinct)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvParams kp;
    kp.replication = 3;
    kv::KvRouter router(sim, cluster, kp);

    for (Key k = 0; k < 200; ++k) {
        auto own = router.owners(k);
        ASSERT_EQ(own.size(), 3u);
        std::set<net::NodeId> uniq(own.begin(), own.end());
        EXPECT_EQ(uniq.size(), 3u);
        EXPECT_EQ(own, router.owners(k));
        for (net::NodeId n : own)
            EXPECT_LT(n, 4u);
    }
}

TEST(KvRouter, PrimariesBalanceAcrossNodes)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});

    std::vector<unsigned> counts(4, 0);
    const unsigned keys = 4000;
    for (Key k = 0; k < keys; ++k)
        ++counts[router.owners(k)[0]];
    for (unsigned n = 0; n < 4; ++n) {
        // Mean is 25%; consistent hashing with 64 vnodes stays well
        // inside a 2x envelope.
        EXPECT_GT(counts[n], keys / 8) << "node " << n;
        EXPECT_LT(counts[n], keys / 2) << "node " << n;
    }
}

TEST(KvRouter, PutReplicatesToAllOwners)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});

    const Key key = 42;
    KvStatus st = KvStatus::Error;
    router.put(0, key, val(0x42), [&](KvStatus s) { st = s; });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);

    auto own = router.owners(key);
    ASSERT_EQ(own.size(), 2u);
    for (net::NodeId n : own)
        EXPECT_TRUE(router.shard(n).contains(key))
            << "replica on node " << n;
    // Only the owners hold it.
    for (unsigned n = 0; n < 4; ++n) {
        if (std::find(own.begin(), own.end(), n) == own.end()) {
            EXPECT_FALSE(
                router.shard(net::NodeId(n)).contains(key));
        }
    }
}

TEST(KvRouter, RemoteGetCrossesNetwork)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});

    // A key owned by neither replica on node 0.
    Key key = 0;
    while (true) {
        auto own = router.owners(key);
        if (std::find(own.begin(), own.end(), 0) == own.end())
            break;
        ++key;
    }
    router.put(0, key, val(0x77), [](KvStatus) {});
    sim.run();
    std::uint64_t remote_before = router.remoteOps();

    PageBuffer got;
    KvStatus st = KvStatus::Error;
    router.get(0, key, [&](PageBuffer v, KvStatus s) {
        got = std::move(v);
        st = s;
    });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    EXPECT_EQ(got, val(0x77));
    EXPECT_GT(router.remoteOps(), remote_before);
}

TEST(KvRouter, ReadPrefersLocalReplica)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});

    // A key with a replica on node 2.
    Key key = 0;
    while (true) {
        auto own = router.owners(key);
        if (std::find(own.begin(), own.end(), 2) != own.end())
            break;
        ++key;
    }
    EXPECT_EQ(router.readReplica(2, key), 2u);
    router.put(2, key, val(0x33), [](KvStatus) {});
    sim.run();

    std::uint64_t local_before = router.localOps();
    PageBuffer got;
    router.get(2, key, [&](PageBuffer v, KvStatus) {
        got = std::move(v);
    });
    sim.run();
    EXPECT_EQ(got, val(0x33));
    EXPECT_GT(router.localOps(), local_before);
}

TEST(KvRouter, DeleteRemovesEveryReplica)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});

    const Key key = 19;
    router.put(1, key, val(0x19), [](KvStatus) {});
    sim.run();
    KvStatus st = KvStatus::Error;
    router.del(3, key, [&](KvStatus s) { st = s; });
    sim.run();
    EXPECT_EQ(st, KvStatus::Ok);
    for (unsigned n = 0; n < 4; ++n)
        EXPECT_FALSE(router.shard(net::NodeId(n)).contains(key));

    KvStatus get_st = KvStatus::Ok;
    router.get(0, key, [&](PageBuffer, KvStatus s) { get_st = s; });
    sim.run();
    EXPECT_EQ(get_st, KvStatus::NotFound);
}

TEST(KvRouter, MultiGetAlignsValuesWithKeys)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});

    router.put(0, 1, val(0x01), [](KvStatus) {});
    router.put(1, 2, val(0x02), [](KvStatus) {});
    sim.run();

    std::vector<PageBuffer> values;
    std::vector<KvStatus> sts;
    router.multiGet(3, {2, 99, 1},
                    [&](std::vector<PageBuffer> v,
                        std::vector<KvStatus> s) {
        values = std::move(v);
        sts = std::move(s);
    });
    sim.run();
    ASSERT_EQ(values.size(), 3u);
    EXPECT_EQ(sts[0], KvStatus::Ok);
    EXPECT_EQ(values[0], val(0x02));
    EXPECT_EQ(sts[1], KvStatus::NotFound);
    EXPECT_EQ(sts[2], KvStatus::Ok);
    EXPECT_EQ(values[2], val(0x01));
}

TEST(KvRouter, ManyMixedOpsAllComplete)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});

    const int keys = 150;
    int acks = 0;
    for (int k = 0; k < keys; ++k) {
        router.put(net::NodeId(k % 4), Key(k),
                   val(std::uint8_t(k), 32),
                   [&](KvStatus st) {
            EXPECT_EQ(st, KvStatus::Ok);
            ++acks;
        });
    }
    sim.run();
    EXPECT_EQ(acks, keys);

    int gets = 0;
    for (int k = 0; k < keys; ++k) {
        router.get(net::NodeId((k + 1) % 4), Key(k),
                   [&, k](PageBuffer v, KvStatus st) {
            EXPECT_EQ(st, KvStatus::Ok);
            EXPECT_EQ(v, val(std::uint8_t(k), 32));
            ++gets;
        });
    }
    sim.run();
    EXPECT_EQ(gets, keys);
}

// ---------------------------------------------------------------- //
// KvService
// ---------------------------------------------------------------- //

TEST(KvService, WindowBoundsInFlight)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvRouter router(sim, cluster, kv::KvParams{});
    kv::KvService service(sim, router);

    router.put(0, 1, val(0x01), [](KvStatus) {});
    sim.run();

    kv::KvService::ClientParams cp;
    cp.window = 2;
    cp.queueCap = 64;
    auto client = service.addClient(0, cp);

    int done = 0;
    for (int i = 0; i < 10; ++i) {
        service.get(client, 1,
                    [&](PageBuffer, KvStatus st) {
            EXPECT_EQ(st, KvStatus::Ok);
            ++done;
        });
    }
    // Submission is synchronous: exactly window ops dispatched, the
    // rest parked in the client's queue.
    EXPECT_EQ(service.inFlight(client), 2u);
    EXPECT_EQ(service.queued(client), 8u);
    sim.run();
    EXPECT_EQ(done, 10);
    EXPECT_EQ(service.inFlight(client), 0u);
    EXPECT_EQ(service.admitted(), 10u);
    EXPECT_EQ(service.rejected(), 0u);
}

TEST(KvService, AdmissionRejectsBeyondQueueCap)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvRouter router(sim, cluster, kv::KvParams{});
    kv::KvService service(sim, router);

    kv::KvService::ClientParams cp;
    cp.window = 1;
    cp.queueCap = 2;
    auto client = service.addClient(0, cp);

    int overloaded = 0, completed = 0;
    for (int i = 0; i < 6; ++i) {
        service.put(client, Key(i), val(std::uint8_t(i), 16),
                    [&](KvStatus st) {
            ++completed;
            if (st == KvStatus::Overloaded)
                ++overloaded;
        });
    }
    sim.run();
    EXPECT_EQ(completed, 6);
    // 1 in flight + 2 queued admitted; 3 rejected.
    EXPECT_EQ(overloaded, 3);
    EXPECT_EQ(service.rejected(), 3u);
    EXPECT_EQ(service.admitted(), 3u);
}

TEST(KvService, MultiGetCountsAsOneWindowSlot)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(4));
    kv::KvRouter router(sim, cluster, kv::KvParams{});
    kv::KvService service(sim, router);

    for (Key k = 0; k < 8; ++k)
        router.put(0, k, val(std::uint8_t(k), 16), [](KvStatus) {});
    sim.run();

    kv::KvService::ClientParams cp;
    cp.window = 1;
    auto client = service.addClient(1, cp);
    int done = 0;
    service.multiGet(client, {0, 1, 2, 3, 4, 5, 6, 7},
                     [&](std::vector<PageBuffer> values,
                         std::vector<KvStatus> sts) {
        EXPECT_EQ(values.size(), 8u);
        for (KvStatus st : sts)
            EXPECT_EQ(st, KvStatus::Ok);
        ++done;
    });
    EXPECT_EQ(service.inFlight(client), 1u);
    sim.run();
    EXPECT_EQ(done, 1);
}

TEST(KvService, RejectedMultiGetReportsPerKeyOverload)
{
    sim::Simulator sim;
    core::Cluster cluster(sim, kvCluster(2));
    kv::KvRouter router(sim, cluster, kv::KvParams{});
    kv::KvService service(sim, router);

    kv::KvService::ClientParams cp;
    cp.window = 1;
    cp.queueCap = 0;
    auto client = service.addClient(0, cp);

    // queueCap 0: everything beyond... even the first op needs a
    // queue slot, so it is rejected outright.
    bool saw = false;
    service.multiGet(client, {1, 2, 3},
                     [&](std::vector<PageBuffer> values,
                         std::vector<KvStatus> sts) {
        saw = true;
        EXPECT_EQ(values.size(), 3u);
        for (KvStatus st : sts)
            EXPECT_EQ(st, KvStatus::Overloaded);
    });
    sim.run();
    EXPECT_TRUE(saw);
}
