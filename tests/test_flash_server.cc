/**
 * @file
 * Tests for the Flash Server: in-order delivery over an out-of-order
 * flash interface, the address translation unit, and multi-interface
 * independence.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "flash/flash_card.hh"
#include "flash/flash_server.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using flash::Address;
using flash::FlashCard;
using flash::FlashServer;
using flash::Geometry;
using flash::PageBuffer;
using flash::Status;
using flash::Timing;

namespace {

struct Fixture
{
    sim::Simulator sim;
    FlashCard card{sim, Geometry::tiny(), Timing::fast(), 32};
    flash::FlashSplitter::Port &port{card.splitter().addPort(32)};
    FlashServer server{sim, port, 2, 8};
};

} // namespace

TEST(FlashServer, SinglePageRead)
{
    Fixture f;
    PageBuffer got;
    f.server.readPage(0, Address{0, 0, 0, 0},
                      [&](PageBuffer data, Status st) {
        EXPECT_EQ(st, Status::Ok);
        got = std::move(data);
    });
    f.sim.run();
    EXPECT_EQ(got.size(), f.card.geometry().pageSize);
    EXPECT_EQ(got, f.card.nand().store().read(Address{0, 0, 0, 0}));
}

TEST(FlashServer, WriteThenReadBack)
{
    Fixture f;
    const auto ps = f.card.geometry().pageSize;
    bool wrote = false;
    f.server.writePage(0, Address{1, 0, 0, 0}, PageBuffer(ps, 0x3c),
                       [&](Status st) {
        EXPECT_EQ(st, Status::Ok);
        wrote = true;
    });
    f.sim.run();
    ASSERT_TRUE(wrote);

    PageBuffer got;
    f.server.readPage(0, Address{1, 0, 0, 0},
                      [&](PageBuffer data, Status) {
        got = std::move(data);
    });
    f.sim.run();
    EXPECT_EQ(got, PageBuffer(ps, 0x3c));
}

TEST(FlashServer, InOrderDeliveryDespiteOutOfOrderFlash)
{
    Fixture f;
    const Geometry &g = f.card.geometry();
    // Mix addresses so that later requests complete earlier at the
    // flash level: first page on a chip made busy by an erase.
    bool erased = false;
    f.server.eraseBlock(0, Address{0, 0, 0, 0},
                        [&](Status) { erased = true; });

    std::vector<Address> addrs;
    addrs.push_back(Address{0, 0, 1, 0}); // slow: behind the erase
    addrs.push_back(Address{1, 0, 0, 0}); // fast: idle bus
    addrs.push_back(Address{1, 1, 0, 0}); // fast: idle chip

    f.server.defineHandle(42, addrs);
    std::vector<PageBuffer> pages;
    f.server.streamRead(0, 42, 0, 3, [&](PageBuffer data, Status st) {
        EXPECT_EQ(st, Status::Ok);
        pages.push_back(std::move(data));
    });
    f.sim.run();
    ASSERT_TRUE(erased);
    ASSERT_EQ(pages.size(), 3u);
    // Delivery must match file order, not completion order.
    for (std::size_t i = 0; i < addrs.size(); ++i)
        EXPECT_EQ(pages[i], f.card.nand().store().read(addrs[i]))
            << "page " << i;
    (void)g;
}

TEST(FlashServer, StreamReadWholeHandle)
{
    Fixture f;
    const Geometry &g = f.card.geometry();
    std::vector<Address> addrs;
    for (std::uint64_t i = 0; i < 32; ++i)
        addrs.push_back(Address::fromStriped(g, i));
    f.server.defineHandle(1, addrs);

    int delivered = 0;
    f.server.streamRead(0, 1, 0, 32,
                        [&](PageBuffer, Status) { ++delivered; });
    f.sim.run();
    EXPECT_EQ(delivered, 32);
}

TEST(FlashServer, StreamReadSubRange)
{
    Fixture f;
    const Geometry &g = f.card.geometry();
    std::vector<Address> addrs;
    for (std::uint64_t i = 0; i < 16; ++i)
        addrs.push_back(Address::fromStriped(g, i));
    f.server.defineHandle(2, addrs);

    std::vector<PageBuffer> pages;
    f.server.streamRead(0, 2, 4, 3, [&](PageBuffer data, Status) {
        pages.push_back(std::move(data));
    });
    f.sim.run();
    ASSERT_EQ(pages.size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(pages[i],
                  f.card.nand().store().read(addrs[4 + i]));
}

TEST(FlashServer, AtuDefineDropReplace)
{
    Fixture f;
    std::vector<Address> a1{Address{0, 0, 0, 0}};
    std::vector<Address> a2{Address{1, 0, 0, 0}, Address{1, 1, 0, 0}};
    f.server.defineHandle(9, a1);
    ASSERT_NE(f.server.handlePages(9), nullptr);
    EXPECT_EQ(f.server.handlePages(9)->size(), 1u);
    f.server.defineHandle(9, a2); // replace
    EXPECT_EQ(f.server.handlePages(9)->size(), 2u);
    f.server.dropHandle(9);
    EXPECT_EQ(f.server.handlePages(9), nullptr);
}

TEST(FlashServer, InterfacesAreIndependentlyOrdered)
{
    Fixture f;
    const Geometry &g = f.card.geometry();
    std::vector<int> events; // 0/1 per interface completion
    std::vector<Address> addrs0, addrs1;
    for (std::uint64_t i = 0; i < 8; ++i) {
        addrs0.push_back(Address::fromStriped(g, i));
        addrs1.push_back(Address::fromStriped(g, 8 + i));
    }
    f.server.defineHandle(0, addrs0);
    f.server.defineHandle(1, addrs1);
    int done0 = 0, done1 = 0;
    f.server.streamRead(0, 0, 0, 8,
                        [&](PageBuffer, Status) { ++done0; });
    f.server.streamRead(1, 1, 0, 8,
                        [&](PageBuffer, Status) { ++done1; });
    f.sim.run();
    EXPECT_EQ(done0, 8);
    EXPECT_EQ(done1, 8);
}

TEST(FlashServer, BackPressureRespectsQueueDepth)
{
    // Queue depth 8: even with 100 pages requested, at most 8 port
    // tags may be busy at any instant. We check it indirectly: the
    // run completes and in-order delivery holds.
    Fixture f;
    const Geometry &g = f.card.geometry();
    std::vector<Address> addrs;
    for (std::uint64_t i = 0; i < 100; ++i)
        addrs.push_back(Address::fromStriped(g, i % g.pages()));
    f.server.defineHandle(3, addrs);
    int count = 0;
    f.server.streamRead(0, 3, 0, 100,
                        [&](PageBuffer, Status) { ++count; });
    f.sim.run();
    EXPECT_EQ(count, 100);
}

TEST(FlashServerDeath, UnknownHandleIsFatal)
{
    Fixture f;
    EXPECT_DEATH(f.server.streamRead(0, 12345, 0, 1,
                                     [](PageBuffer, Status) {}),
                 "undefined handle");
}

TEST(FlashServerDeath, RangePastEndIsFatal)
{
    Fixture f;
    f.server.defineHandle(1, {Address{0, 0, 0, 0}});
    EXPECT_DEATH(f.server.streamRead(0, 1, 0, 2,
                                     [](PageBuffer, Status) {}),
                 "past end");
}

TEST(FlashServer, InjectedWriteFaultLeavesPageUntouched)
{
    Fixture f;
    const auto ps = f.card.geometry().pageSize;
    const Address addr{1, 0, 1, 0};
    PageBuffer before = f.card.nand().store().read(addr);

    // The armed hook fails the program before it reaches the card:
    // the completion reports failure, in order, and the NAND
    // contents are unchanged.
    f.server.setWriteFault(
        [&](const Address &a) { return a.block == addr.block; });
    Status got = Status::Ok;
    f.server.writePage(0, addr, PageBuffer(ps, 0x5d),
                       [&](Status st) { got = st; });
    f.sim.run();
    EXPECT_NE(got, Status::Ok);
    EXPECT_EQ(f.server.injectedWriteFaults(), 1u);
    EXPECT_EQ(f.card.nand().store().read(addr), before);

    // Unarmed addresses (and the hook removed) program normally.
    f.server.setWriteFault(nullptr);
    f.server.writePage(0, addr, PageBuffer(ps, 0x5d),
                       [&](Status st) { got = st; });
    f.sim.run();
    EXPECT_EQ(got, Status::Ok);
    EXPECT_EQ(f.card.nand().store().read(addr),
              PageBuffer(ps, 0x5d));
}

TEST(FlashServer, QueueLengthTracksPendingAndInFlight)
{
    Fixture f;
    EXPECT_EQ(f.server.queueLength(0), 0u);
    int done = 0;
    for (int i = 0; i < 12; ++i) {
        f.server.readPage(0, Address{0, 0, 0, std::uint32_t(i)},
                          [&](PageBuffer, Status) { ++done; });
    }
    // Depth is 8: eight in flight, four still pending.
    EXPECT_EQ(f.server.queueLength(0), 12u);
    EXPECT_EQ(f.server.queueLength(1), 0u);
    f.sim.run();
    EXPECT_EQ(done, 12);
    EXPECT_EQ(f.server.queueLength(0), 0u);
}

TEST(FlashServer, ReadsDeliverIndependentlyOfSlowWrites)
{
    // Completion delivery is in order PER TRAFFIC CLASS: a read
    // issued after a write must not wait in the reorder buffer for
    // the (much slower) program's completion slot -- that would
    // throw away everything read-priority suspension wins at the
    // NAND.
    Fixture f;
    const auto ps = f.card.geometry().pageSize;
    sim::Tick write_done = 0, read_done = 0;
    f.server.writePage(0, Address{0, 0, 0, 0}, PageBuffer(ps, 0x11),
                       [&](Status) { write_done = f.sim.now(); });
    f.server.readPage(0, Address{1, 0, 0, 0},
                      [&](PageBuffer, Status) {
        read_done = f.sim.now();
    });
    f.sim.run();
    ASSERT_NE(write_done, 0u);
    ASSERT_NE(read_done, 0u);
    EXPECT_LT(read_done, write_done);
}

TEST(FlashServer, PartialReadOutDeliversRange)
{
    Fixture f;
    const auto ps = f.card.geometry().pageSize;
    const Address addr{1, 1, 0, 0};
    bool wrote = false;
    PageBuffer data(ps);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i ^ 0x41);
    f.server.writePage(0, addr, data, [&](Status) { wrote = true; });
    f.sim.run();
    ASSERT_TRUE(wrote);

    PageBuffer got;
    f.server.readPage(0, addr,
                      [&](PageBuffer range, Status st) {
        EXPECT_EQ(st, Status::Ok);
        got = std::move(range);
    },
                      flash::Priority::Read, 37, 200);
    f.sim.run();
    ASSERT_EQ(got.size(), 200u);
    EXPECT_TRUE(std::equal(got.begin(), got.end(),
                           data.begin() + 37));
}

// ---------------------------------------------------------------- //
// Program coalescing (write combining)
// ---------------------------------------------------------------- //

namespace {

/**
 * Issue @p writes page programs to consecutive pages of one chip
 * through one interface and return the tick of the last completion.
 * With @p batch enabled the writes behind the first should flush as
 * a command group and share program windows.
 */
sim::Tick
runChipWrites(bool batch, unsigned writes,
              std::uint64_t *coalesced = nullptr,
              std::uint64_t *batched = nullptr)
{
    sim::Simulator sim;
    FlashCard card{sim, Geometry::tiny(), Timing::fast(), 32};
    auto &port = card.splitter().addPort(32);
    FlashServer server{sim, port, 2, 8};
    if (batch)
        server.enableWriteBatching(0, 4, sim::usToTicks(50));

    const auto ps = card.geometry().pageSize;
    unsigned done = 0;
    for (unsigned i = 0; i < writes; ++i) {
        // Same bus, same chip: the collision case coalescing exists
        // for (different buses already program in parallel).
        server.writePage(0, Address{0, 0, 0, i},
                         PageBuffer(ps, std::uint8_t(i)),
                         [&](Status st) {
            EXPECT_EQ(st, Status::Ok);
            ++done;
        });
    }
    sim.run();
    EXPECT_EQ(done, writes);
    if (coalesced)
        *coalesced = card.nand().coalescedPrograms();
    if (batched)
        *batched = server.batchedWrites();
    // Data must land correctly despite the shared program windows.
    for (unsigned i = 0; i < writes; ++i) {
        EXPECT_EQ(card.nand().store().read(Address{0, 0, 0, i}),
                  PageBuffer(ps, std::uint8_t(i)))
            << "page " << i;
    }
    return sim.now();
}

} // namespace

TEST(FlashServer, WriteBatchSharesProgramWindows)
{
    std::uint64_t coalesced = 0, batched = 0;
    sim::Tick with = runChipWrites(true, 6, &coalesced, &batched);
    sim::Tick without = runChipWrites(false, 6);
    // The batch behind the lead write flushed as a group...
    EXPECT_GE(batched, 2u);
    // ...and at least one program rode another's tPROG window...
    EXPECT_GE(coalesced, 1u);
    // ...which must show up as wall-clock: same-chip writes no
    // longer serialize one full program each.
    EXPECT_LT(with, without);
}

TEST(FlashServer, IdleQueueBypassesBatchWindow)
{
    // A lone write on an idle interface must not wait out the batch
    // window: identical completion time with and without batching.
    sim::Tick with = runChipWrites(true, 1);
    sim::Tick without = runChipWrites(false, 1);
    EXPECT_EQ(with, without);

    std::uint64_t batched = ~0ull;
    runChipWrites(true, 1, nullptr, &batched);
    EXPECT_EQ(batched, 0u);
}

TEST(FlashServer, BatchedWritesSurviveFaultInjection)
{
    // A write fault inside a flushed batch fails only its own page;
    // the group's other programs land.
    sim::Simulator sim;
    FlashCard card{sim, Geometry::tiny(), Timing::fast(), 32};
    auto &port = card.splitter().addPort(32);
    FlashServer server{sim, port, 2, 8};
    server.enableWriteBatching(0, 4, sim::usToTicks(50));
    server.setWriteFault(
        [](const Address &a) { return a.page == 2; });

    const auto ps = card.geometry().pageSize;
    std::vector<Status> got(4, Status::Ok);
    unsigned done = 0;
    for (unsigned i = 0; i < 4; ++i) {
        server.writePage(0, Address{0, 0, 1, i},
                         PageBuffer(ps, std::uint8_t(0xa0 + i)),
                         [&, i](Status st) {
            got[i] = st;
            ++done;
        });
    }
    sim.run();
    EXPECT_EQ(done, 4u);
    for (unsigned i = 0; i < 4; ++i) {
        if (i == 2) {
            EXPECT_NE(got[i], Status::Ok);
            continue;
        }
        EXPECT_EQ(got[i], Status::Ok) << "page " << i;
        EXPECT_EQ(card.nand().store().read(Address{0, 0, 1, i}),
                  PageBuffer(ps, std::uint8_t(0xa0 + i)));
    }
    EXPECT_EQ(server.injectedWriteFaults(), 1u);
}

TEST(FlashServer, ReadFaultDropSwallowsResponse)
{
    Fixture f;

    // The armed hook loses the completion above the flash: the
    // waiter never hears back (its timeout machinery owns
    // recovery), but the delivery slot retires so later reads on
    // the interface still flow in order.
    f.server.setReadFault([](const Address &) {
        FlashServer::ReadFaultAction act;
        act.drop = true;
        return act;
    });
    bool heard = false;
    f.server.readPage(0, Address{0, 0, 0, 0},
                      [&](PageBuffer, Status) { heard = true; });
    f.sim.run();
    EXPECT_FALSE(heard);
    EXPECT_EQ(f.server.injectedReadFaults(), 1u);

    // Disarmed, the interface serves normally again.
    f.server.setReadFault(nullptr);
    Status st = Status::Uncorrectable;
    f.server.readPage(0, Address{0, 0, 0, 0},
                      [&](PageBuffer, Status s) { st = s; });
    f.sim.run();
    EXPECT_EQ(st, Status::Ok);
    EXPECT_EQ(f.server.injectedReadFaults(), 1u);
}

TEST(FlashServer, ReadFaultDelayShiftsCompletion)
{
    Fixture f;

    // Baseline: one unfaulted read's completion time.
    sim::Tick healthy = 0;
    f.server.readPage(0, Address{0, 0, 0, 0},
                      [&](PageBuffer, Status st) {
        EXPECT_EQ(st, Status::Ok);
        healthy = f.sim.now();
    });
    f.sim.run();
    ASSERT_GT(healthy, 0u);

    // A held response: the data still arrives intact, but only
    // after the injected delay (the tag stays busy meanwhile, like
    // a wedged chip backpressuring the interface).
    const sim::Tick delay = 10 * healthy + 1;
    f.server.setReadFault([delay](const Address &) {
        FlashServer::ReadFaultAction act;
        act.delayTicks = delay;
        return act;
    });
    sim::Tick begin = f.sim.now();
    sim::Tick delayed = 0;
    PageBuffer got;
    f.server.readPage(0, Address{0, 0, 0, 0},
                      [&](PageBuffer data, Status st) {
        EXPECT_EQ(st, Status::Ok);
        got = std::move(data);
        delayed = f.sim.now();
    });
    f.sim.run();
    EXPECT_GE(delayed - begin, delay);
    EXPECT_EQ(got, f.card.nand().store().read(Address{0, 0, 0, 0}));
    EXPECT_EQ(f.server.injectedReadFaults(), 1u);
}

// ---------------------------------------------------------------- //
// Uncorrectable fault mode and the read-retry ladder
// ---------------------------------------------------------------- //

TEST(FlashServer, ReadFaultUncorrectableForcesVerdict)
{
    Fixture f;
    f.server.setReadFault([](const Address &) {
        FlashServer::ReadFaultAction act;
        act.uncorrectable = true;
        return act;
    });
    Status st = Status::Ok;
    PageBuffer got;
    f.server.readPage(0, Address{0, 0, 0, 0},
                      [&](PageBuffer data, Status s) {
        st = s;
        got = std::move(data);
    });
    f.sim.run();
    EXPECT_EQ(st, Status::Uncorrectable);
    // The bytes still arrive -- a real failed decode hands up its
    // best guess -- only the verdict is forced.
    EXPECT_EQ(got, f.card.nand().store().read(Address{0, 0, 0, 0}));
    EXPECT_EQ(f.server.injectedReadFaults(), 1u);
}

TEST(FlashServer, RetryLadderRecoversMarginalRead)
{
    Fixture f;
    f.server.setReadRetries(2);
    // Fail the first sense only: the re-sense reads clean, like a
    // marginal page under a read-retry voltage step.
    int senses = 0;
    f.server.setReadFault([&](const Address &) {
        FlashServer::ReadFaultAction act;
        act.uncorrectable = ++senses == 1;
        return act;
    });
    Status st = Status::Uncorrectable;
    f.server.readPage(0, Address{0, 0, 0, 0},
                      [&](PageBuffer, Status s) { st = s; });
    f.sim.run();
    EXPECT_EQ(st, Status::Ok);
    EXPECT_EQ(senses, 2);
    EXPECT_EQ(f.server.retriedReads(), 1u);
    EXPECT_EQ(f.server.retrySuccesses(), 1u);
    EXPECT_EQ(f.server.retryFailures(), 0u);
}

TEST(FlashServer, RetryLadderExhaustsBudgetAndReportsFailure)
{
    Fixture f;
    f.server.setReadRetries(2);
    f.server.setReadFault([](const Address &) {
        FlashServer::ReadFaultAction act;
        act.uncorrectable = true;
        return act;
    });
    Status st = Status::Ok;
    f.server.readPage(0, Address{0, 0, 0, 0},
                      [&](PageBuffer, Status s) { st = s; });
    f.sim.run();
    EXPECT_EQ(st, Status::Uncorrectable);
    // Budget of 2: three senses total, then the verdict stands.
    EXPECT_EQ(f.server.retriedReads(), 2u);
    EXPECT_EQ(f.server.retryFailures(), 1u);
    EXPECT_EQ(f.server.retrySuccesses(), 0u);

    // The ladder re-sensed on the SAME delivery slot: the
    // interface still serves later reads in order.
    f.server.setReadFault(nullptr);
    Status ok_st = Status::Uncorrectable;
    f.server.readPage(0, Address{1, 0, 0, 0},
                      [&](PageBuffer, Status s) { ok_st = s; });
    f.sim.run();
    EXPECT_EQ(ok_st, Status::Ok);
}
