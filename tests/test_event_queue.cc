/**
 * @file
 * Unit tests for the discrete event queue.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using sim::EventQueue;
using sim::Tick;

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickRunsInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    std::vector<Tick> fired;
    q.schedule(1, [&] {
        fired.push_back(q.now());
        q.schedule(q.now() + 4, [&] { fired.push_back(q.now()); });
    });
    q.run();
    EXPECT_EQ(fired, (std::vector<Tick>{1, 5}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    auto id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, CancelUnknownIdReturnsFalse)
{
    EventQueue q;
    auto id = q.schedule(1, [] {});
    q.run();
    EXPECT_FALSE(q.cancel(id));       // already fired
    EXPECT_FALSE(q.cancel(987654));   // never existed
    EXPECT_FALSE(q.cancel(sim::invalidEventId));
}

TEST(EventQueue, DoubleCancelIsSafe)
{
    EventQueue q;
    auto id = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    q.run();
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&] { ++count; });
    q.schedule(20, [&] { ++count; });
    q.schedule(30, [&] { ++count; });
    q.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 20u);
    q.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, PendingAndExecutedCounts)
{
    EventQueue q;
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.step();
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.executed(), 1u);
    q.run();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StepOnEmptyReturnsFalse)
{
    EventQueue q;
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, CancelAfterFireReturnsFalse)
{
    EventQueue q;
    auto id = q.schedule(10, [] {});
    q.run();
    EXPECT_EQ(q.executed(), 1u);
    EXPECT_FALSE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id)); // and stays false
}

TEST(EventQueue, GenerationReuseCannotCancelNewerEvent)
{
    EventQueue q;
    bool a_ran = false, b_ran = false;
    auto a = q.schedule(10, [&] { a_ran = true; });
    EXPECT_TRUE(q.cancel(a));

    // The freed slot is reused (LIFO free list) by the next event.
    auto b = q.schedule(20, [&] { b_ran = true; });
    EXPECT_EQ(sim::eventIdSlot(a), sim::eventIdSlot(b));
    EXPECT_NE(sim::eventIdGeneration(a), sim::eventIdGeneration(b));

    // The stale handle must not touch the slot's new occupant.
    EXPECT_FALSE(q.cancel(a));
    q.run();
    EXPECT_FALSE(a_ran);
    EXPECT_TRUE(b_ran);

    // And after B fired, both handles are dead.
    EXPECT_FALSE(q.cancel(a));
    EXPECT_FALSE(q.cancel(b));
}

TEST(EventQueue, SameTickOrderSurvivesCancellations)
{
    EventQueue q;
    std::vector<int> order;
    std::vector<sim::EventId> ids;
    for (int i = 0; i < 20; ++i)
        ids.push_back(q.schedule(5, [&order, i] { order.push_back(i); }));
    // Cancel every third event; the rest must still run in schedule
    // order (slot recycling must not perturb the tie-break).
    for (int i = 0; i < 20; i += 3)
        EXPECT_TRUE(q.cancel(ids[std::size_t(i)]));
    for (int i = 20; i < 25; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    std::vector<int> expect;
    for (int i = 0; i < 25; ++i)
        if (i >= 20 || i % 3 != 0)
            expect.push_back(i);
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, SlotsAreRecycledInSteadyState)
{
    EventQueue q;
    // A self-rescheduling chain keeps exactly one event pending, so
    // the pool must never grow past the initial high-water mark.
    struct Chain
    {
        EventQueue *q;
        int remaining;
        void
        operator()()
        {
            if (remaining > 0)
                q->schedule(q->now() + 1, Chain{q, remaining - 1});
        }
    };
    q.schedule(1, Chain{&q, 9999});
    q.run();
    EXPECT_EQ(q.executed(), 10000u);
    EXPECT_EQ(q.poolSlots(), 1u);
}

namespace {

/** Callable that counts copies and moves of itself. */
struct CopyCounter
{
    int *copies;
    int *moves;
    int *calls;

    CopyCounter(int *cp, int *mv, int *cl)
        : copies(cp), moves(mv), calls(cl)
    {
    }
    CopyCounter(const CopyCounter &o)
        : copies(o.copies), moves(o.moves), calls(o.calls)
    {
        ++*copies;
    }
    CopyCounter(CopyCounter &&o) noexcept
        : copies(o.copies), moves(o.moves), calls(o.calls)
    {
        ++*moves;
    }
    void operator()() { ++*calls; }
};

} // namespace

TEST(EventQueue, CallbacksAreMovedNotCopied)
{
    // Regression for the legacy `Entry e = heap_.top()` copy: from
    // the moment the callable enters schedule(), the queue may move
    // it but must never copy it.
    EventQueue q;
    int copies = 0, moves = 0, calls = 0;
    q.schedule(1, CopyCounter(&copies, &moves, &calls));
    q.schedule(2, CopyCounter(&copies, &moves, &calls));
    q.run();
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(copies, 0);
    EXPECT_GT(moves, 0);
}

TEST(EventQueue, MoveOnlyCallablesAreSupported)
{
    EventQueue q;
    auto payload = std::make_unique<int>(42);
    int got = 0;
    q.schedule(1, [&got, p = std::move(payload)] { got = *p; });
    q.run();
    EXPECT_EQ(got, 42);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.step();
    EXPECT_DEATH(q.schedule(50, [] {}), "past");
}

TEST(EventQueueDeath, SchedulingEmptyCallbackPanics)
{
    EventQueue q;
    EXPECT_DEATH(q.schedule(1, EventQueue::Callback()),
                 "empty callback");
}

TEST(Simulator, ScheduleAfterUsesCurrentTime)
{
    sim::Simulator s;
    std::vector<Tick> at;
    s.scheduleAt(100, [&] {
        s.scheduleAfter(50, [&] { at.push_back(s.now()); });
    });
    s.run();
    EXPECT_EQ(at, (std::vector<Tick>{150}));
}

TEST(Simulator, CancelThroughFacade)
{
    sim::Simulator s;
    bool ran = false;
    auto id = s.scheduleAfter(5, [&] { ran = true; });
    EXPECT_TRUE(s.cancel(id));
    s.run();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(s.idle());
}
