/**
 * @file
 * Unit tests for the discrete event queue.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using sim::EventQueue;
using sim::Tick;

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickRunsInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    std::vector<Tick> fired;
    q.schedule(1, [&] {
        fired.push_back(q.now());
        q.schedule(q.now() + 4, [&] { fired.push_back(q.now()); });
    });
    q.run();
    EXPECT_EQ(fired, (std::vector<Tick>{1, 5}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    auto id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, CancelUnknownIdReturnsFalse)
{
    EventQueue q;
    auto id = q.schedule(1, [] {});
    q.run();
    EXPECT_FALSE(q.cancel(id));       // already fired
    EXPECT_FALSE(q.cancel(987654));   // never existed
    EXPECT_FALSE(q.cancel(sim::invalidEventId));
}

TEST(EventQueue, DoubleCancelIsSafe)
{
    EventQueue q;
    auto id = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    q.run();
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&] { ++count; });
    q.schedule(20, [&] { ++count; });
    q.schedule(30, [&] { ++count; });
    q.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 20u);
    q.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, PendingAndExecutedCounts)
{
    EventQueue q;
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.step();
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.executed(), 1u);
    q.run();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StepOnEmptyReturnsFalse)
{
    EventQueue q;
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, CancelAfterFireReturnsFalse)
{
    EventQueue q;
    auto id = q.schedule(10, [] {});
    q.run();
    EXPECT_EQ(q.executed(), 1u);
    EXPECT_FALSE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id)); // and stays false
}

TEST(EventQueue, GenerationReuseCannotCancelNewerEvent)
{
    EventQueue q;
    bool a_ran = false, b_ran = false;
    auto a = q.schedule(10, [&] { a_ran = true; });
    EXPECT_TRUE(q.cancel(a));

    // The freed slot is reused (LIFO free list) by the next event.
    auto b = q.schedule(20, [&] { b_ran = true; });
    EXPECT_EQ(sim::eventIdSlot(a), sim::eventIdSlot(b));
    EXPECT_NE(sim::eventIdGeneration(a), sim::eventIdGeneration(b));

    // The stale handle must not touch the slot's new occupant.
    EXPECT_FALSE(q.cancel(a));
    q.run();
    EXPECT_FALSE(a_ran);
    EXPECT_TRUE(b_ran);

    // And after B fired, both handles are dead.
    EXPECT_FALSE(q.cancel(a));
    EXPECT_FALSE(q.cancel(b));
}

TEST(EventQueue, SameTickOrderSurvivesCancellations)
{
    EventQueue q;
    std::vector<int> order;
    std::vector<sim::EventId> ids;
    for (int i = 0; i < 20; ++i)
        ids.push_back(q.schedule(5, [&order, i] { order.push_back(i); }));
    // Cancel every third event; the rest must still run in schedule
    // order (slot recycling must not perturb the tie-break).
    for (int i = 0; i < 20; i += 3)
        EXPECT_TRUE(q.cancel(ids[std::size_t(i)]));
    for (int i = 20; i < 25; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    std::vector<int> expect;
    for (int i = 0; i < 25; ++i)
        if (i >= 20 || i % 3 != 0)
            expect.push_back(i);
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, SlotsAreRecycledInSteadyState)
{
    EventQueue q;
    // A self-rescheduling chain keeps exactly one event pending, so
    // the pool must never grow past the initial high-water mark.
    struct Chain
    {
        EventQueue *q;
        int remaining;
        void
        operator()()
        {
            if (remaining > 0)
                q->schedule(q->now() + 1, Chain{q, remaining - 1});
        }
    };
    q.schedule(1, Chain{&q, 9999});
    q.run();
    EXPECT_EQ(q.executed(), 10000u);
    EXPECT_EQ(q.poolSlots(), 1u);
}

namespace {

/** Callable that counts copies and moves of itself. */
struct CopyCounter
{
    int *copies;
    int *moves;
    int *calls;

    CopyCounter(int *cp, int *mv, int *cl)
        : copies(cp), moves(mv), calls(cl)
    {
    }
    CopyCounter(const CopyCounter &o)
        : copies(o.copies), moves(o.moves), calls(o.calls)
    {
        ++*copies;
    }
    CopyCounter(CopyCounter &&o) noexcept
        : copies(o.copies), moves(o.moves), calls(o.calls)
    {
        ++*moves;
    }
    void operator()() { ++*calls; }
};

} // namespace

TEST(EventQueue, CallbacksAreMovedNotCopied)
{
    // Regression for the legacy `Entry e = heap_.top()` copy: from
    // the moment the callable enters schedule(), the queue may move
    // it but must never copy it.
    EventQueue q;
    int copies = 0, moves = 0, calls = 0;
    q.schedule(1, CopyCounter(&copies, &moves, &calls));
    q.schedule(2, CopyCounter(&copies, &moves, &calls));
    q.run();
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(copies, 0);
    EXPECT_GT(moves, 0);
}

TEST(EventQueue, MoveOnlyCallablesAreSupported)
{
    EventQueue q;
    auto payload = std::make_unique<int>(42);
    int got = 0;
    q.schedule(1, [&got, p = std::move(payload)] { got = *p; });
    q.run();
    EXPECT_EQ(got, 42);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.step();
    EXPECT_DEATH(q.schedule(50, [] {}), "past");
}

TEST(EventQueueDeath, SchedulingEmptyCallbackPanics)
{
    EventQueue q;
    EXPECT_DEATH(q.schedule(1, EventQueue::Callback()),
                 "empty callback");
}

TEST(Simulator, ScheduleAfterUsesCurrentTime)
{
    sim::Simulator s;
    std::vector<Tick> at;
    s.scheduleAt(100, [&] {
        s.scheduleAfter(50, [&] { at.push_back(s.now()); });
    });
    s.run();
    EXPECT_EQ(at, (std::vector<Tick>{150}));
}

TEST(Simulator, CancelThroughFacade)
{
    sim::Simulator s;
    bool ran = false;
    auto id = s.scheduleAfter(5, [&] { ran = true; });
    EXPECT_TRUE(s.cancel(id));
    s.run();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(s.idle());
}

// ---------------------------------------------------------------- //
// Ladder-queue edge cases
// ---------------------------------------------------------------- //

TEST(EventQueueLadder, CancelHeavyChurnRecyclesAndKeepsOrder)
{
    EventQueue q;
    // The timeout-guard pattern at scale: waves of far-future guards
    // that are all cancelled before they can fire. Stale ladder
    // records must be pruned lazily and slots recycled immediately.
    std::vector<sim::EventId> guards;
    for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 100; ++i)
            guards.push_back(
                q.schedule(1000000 + Tick(i) * 1000, [] {}));
        for (auto id : guards)
            EXPECT_TRUE(q.cancel(id));
        guards.clear();
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
    // Slots recycle: the pool is bounded by the per-wave maximum.
    EXPECT_LE(q.poolSlots(), 100u);
    // The structure still orders correctly after the churn.
    std::vector<int> order;
    q.schedule(5000, [&] { order.push_back(2); });
    q.schedule(50, [&] { order.push_back(1); });
    q.schedule(50000000, [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueLadder, FarFutureTimersCrossEpochs)
{
    EventQueue q;
    // Ticks are picoseconds: spans from sub-ns link events to
    // multi-second timers force top spreads, multi-level rungs and
    // re-spreads as the epochs drain.
    std::vector<Tick> whens;
    for (Tick w = 1; w < Tick(4e15); w = w * 3 + 1)
        whens.push_back(w);
    std::vector<Tick> fired;
    for (Tick w : whens)
        q.schedule(w, [w, &fired] { fired.push_back(w); });
    // Mid-run cross-epoch inserts: each firing schedules a short
    // follow-up that lands far below the remaining timers.
    std::vector<Tick> extra;
    for (Tick w : whens) {
        if (w > 1000)
            q.schedule(w - 1, [&q, &extra] {
                q.schedule(q.now() + 7, [&q, &extra] {
                    extra.push_back(q.now());
                });
            });
    }
    q.run();
    ASSERT_EQ(fired.size(), whens.size());
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
    EXPECT_EQ(fired, whens);
    // Every follow-up fired at its precise short offset:
    // (w - 1) + 7 for each timer above the threshold.
    std::vector<Tick> expect_extra;
    for (Tick w : whens)
        if (w > 1000)
            expect_extra.push_back(w + 6);
    EXPECT_EQ(extra, expect_extra);
}

TEST(EventQueueLadder, SameTickBurstMidRunKeepsFifo)
{
    EventQueue q;
    std::vector<int> order;
    // First event at tick 100 schedules same-tick follow-ups; a
    // pre-scheduled peer at tick 100 has an earlier sequence number
    // and must fire before them.
    q.schedule(100, [&q, &order] {
        order.push_back(0);
        for (int i = 1; i <= 3; ++i)
            q.schedule(100, [&order, i] { order.push_back(i); });
    });
    q.schedule(100, [&order] { order.push_back(10); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 10, 1, 2, 3}));
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueueLadder, GenerationExhaustionRetiresSlot)
{
    EventQueue q;
    sim::EventId a = q.schedule(10, [] {});
    // Jump the slot to the last usable generation (organically that
    // takes 2^32 fire/cancel cycles on one slot).
    sim::EventId jam = q.debugExhaustGeneration(a);
    std::uint32_t slot = sim::eventIdSlot(jam);
    EXPECT_EQ(sim::eventIdGeneration(jam), 0xffffffffu);
    EXPECT_FALSE(q.cancel(a)); // the pre-jump handle is dead
    EXPECT_TRUE(q.cancel(jam));
    // The generation wrapped: the slot is permanently retired, not
    // recycled, so no future handle can alias it.
    EXPECT_EQ(q.retiredSlots(), 1u);
    EXPECT_FALSE(q.cancel(jam));
    sim::EventId b = q.schedule(20, [] {});
    EXPECT_NE(sim::eventIdSlot(b), slot);
    q.run();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueLadder, GenerationExhaustionByFiringRetiresSlot)
{
    EventQueue q;
    bool ran = false;
    sim::EventId a = q.schedule(10, [&ran] { ran = true; });
    q.debugExhaustGeneration(a);
    q.run();
    EXPECT_TRUE(ran); // firing still works on the last generation
    EXPECT_EQ(q.retiredSlots(), 1u);
}

/**
 * Ordering oracle: drive the ladder queue and an exact reference
 * model (a multiset ordered by (tick, 64-bit schedule sequence) --
 * the order the replaced 4-ary heap produced) through the same
 * seeded schedule/cancel/pop churn, and require identical execution
 * order throughout. This is the determinism contract the fig12/13
 * bit-identity gates rest on.
 */
TEST(EventQueueLadder, MatchesHeapOrderOracleUnderSeededChurn)
{
    EventQueue q;
    std::uint64_t lcg = 0x00c0ffee;
    auto rnd = [&lcg]() {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return lcg >> 33;
    };

    struct RefEv
    {
        Tick when;
        std::uint64_t seq;
        int tag;
    };
    auto before = [](const RefEv &a, const RefEv &b) {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    };
    std::multiset<RefEv, decltype(before)> ref(before);
    std::uint64_t refSeq = 0;

    struct Live
    {
        sim::EventId id;
        int tag;
        std::multiset<RefEv, decltype(before)>::iterator it;
    };
    std::vector<Live> live;
    std::vector<int> fired;
    int nextTag = 0;

    auto popBoth = [&]() {
        bool stepped = q.step();
        ASSERT_EQ(stepped, !ref.empty());
        if (!stepped)
            return;
        auto it = ref.begin();
        ASSERT_EQ(q.now(), it->when);
        ASSERT_FALSE(fired.empty());
        ASSERT_EQ(fired.back(), it->tag);
        for (std::size_t k = 0; k < live.size(); ++k) {
            if (live[k].tag == it->tag) {
                live[k] = live.back();
                live.pop_back();
                break;
            }
        }
        ref.erase(it);
    };

    for (int round = 0; round < 30000; ++round) {
        unsigned r = unsigned(rnd() % 100);
        if (r < 50 || live.size() < 4) {
            // Schedule with delays spanning same-tick bursts to
            // epoch-crossing far-future timers.
            std::uint64_t pick = rnd() % 5;
            Tick delay = pick == 0 ? 0
                : pick == 1        ? rnd() % 64
                : pick == 2        ? rnd() % 8192
                : pick == 3        ? rnd() % 1000000
                                   : rnd() % 1000000000000ull;
            Tick when = q.now() + delay;
            int tag = nextTag++;
            sim::EventId id = q.schedule(
                when, [tag, &fired] { fired.push_back(tag); });
            auto it = ref.insert(RefEv{when, refSeq++, tag});
            live.push_back(Live{id, tag, it});
        } else if (r < 72 && !live.empty()) {
            std::size_t k = std::size_t(rnd() % live.size());
            ASSERT_TRUE(q.cancel(live[k].id));
            ref.erase(live[k].it);
            live[k] = live.back();
            live.pop_back();
        } else {
            popBoth();
            if (HasFatalFailure())
                return;
        }
    }
    while (!ref.empty()) {
        popBoth();
        if (HasFatalFailure())
            return;
    }
    EXPECT_FALSE(q.step());
    EXPECT_TRUE(q.empty());
}
