/**
 * @file
 * Unit tests for the discrete event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using sim::EventQueue;
using sim::Tick;

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickRunsInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    std::vector<Tick> fired;
    q.schedule(1, [&] {
        fired.push_back(q.now());
        q.schedule(q.now() + 4, [&] { fired.push_back(q.now()); });
    });
    q.run();
    EXPECT_EQ(fired, (std::vector<Tick>{1, 5}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    auto id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, CancelUnknownIdReturnsFalse)
{
    EventQueue q;
    auto id = q.schedule(1, [] {});
    q.run();
    EXPECT_FALSE(q.cancel(id));       // already fired
    EXPECT_FALSE(q.cancel(987654));   // never existed
    EXPECT_FALSE(q.cancel(sim::invalidEventId));
}

TEST(EventQueue, DoubleCancelIsSafe)
{
    EventQueue q;
    auto id = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    q.run();
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&] { ++count; });
    q.schedule(20, [&] { ++count; });
    q.schedule(30, [&] { ++count; });
    q.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 20u);
    q.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, PendingAndExecutedCounts)
{
    EventQueue q;
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.step();
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.executed(), 1u);
    q.run();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StepOnEmptyReturnsFalse)
{
    EventQueue q;
    EXPECT_FALSE(q.step());
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.step();
    EXPECT_DEATH(q.schedule(50, [] {}), "past");
}

TEST(Simulator, ScheduleAfterUsesCurrentTime)
{
    sim::Simulator s;
    std::vector<Tick> at;
    s.scheduleAt(100, [&] {
        s.scheduleAfter(50, [&] { at.push_back(s.now()); });
    });
    s.run();
    EXPECT_EQ(at, (std::vector<Tick>{150}));
}

TEST(Simulator, CancelThroughFacade)
{
    sim::Simulator s;
    bool ran = false;
    auto id = s.scheduleAfter(5, [&] { ran = true; });
    EXPECT_TRUE(s.cancel(id));
    s.run();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(s.idle());
}
