/**
 * @file
 * Tests for the analytics library: hamming kernels, LSH properties,
 * page graphs and corpus generation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analytics/graph.hh"
#include "analytics/hamming.hh"
#include "analytics/lsh.hh"
#include "analytics/text.hh"
#include "sim/random.hh"

using namespace bluedbm;
using analytics::Corpus;
using analytics::hammingDistance;
using analytics::LshIndex;
using analytics::PageGraph;

TEST(Hamming, IdenticalIsZero)
{
    std::vector<std::uint8_t> a(1000, 0x5a);
    EXPECT_EQ(hammingDistance(a, a), 0u);
}

TEST(Hamming, KnownDistances)
{
    std::vector<std::uint8_t> a{0x00, 0xff, 0x0f};
    std::vector<std::uint8_t> b{0x01, 0xff, 0xf0};
    // 1 bit + 0 bits + 8 bits.
    EXPECT_EQ(hammingDistance(a, b), 9u);
}

TEST(Hamming, ComplementIsAllBits)
{
    std::vector<std::uint8_t> a(64, 0xaa);
    std::vector<std::uint8_t> b(64, 0x55);
    EXPECT_EQ(hammingDistance(a, b), 64u * 8);
}

TEST(Hamming, UnalignedTailHandled)
{
    std::vector<std::uint8_t> a(13, 0);
    std::vector<std::uint8_t> b(13, 0);
    b[12] = 0x80;
    EXPECT_EQ(hammingDistance(a, b), 1u);
}

TEST(Lsh, IdenticalItemsAlwaysCollide)
{
    LshIndex idx(4, 12, 256);
    sim::Rng rng(1);
    std::vector<std::uint8_t> item(256);
    for (auto &b : item)
        b = std::uint8_t(rng.next());
    idx.insert(7, item.data());
    auto cands = idx.candidates(item.data());
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0], 7u);
}

TEST(Lsh, SimilarItemsCollideMoreThanRandom)
{
    // Property: near items (small hamming distance) are found far
    // more often than random items.
    LshIndex idx(8, 10, 256);
    sim::Rng rng(2);
    const int items = 400;
    std::vector<std::vector<std::uint8_t>> data(items);
    for (int i = 0; i < items; ++i) {
        data[i].resize(256);
        for (auto &b : data[i])
            b = std::uint8_t(rng.next());
        idx.insert(std::uint64_t(i), data[i].data());
    }
    int near_found = 0, far_found = 0;
    const int queries = 100;
    for (int q = 0; q < queries; ++q) {
        int base = int(rng.below(items));
        // Near query: flip 8 of 2048 bits.
        auto near = data[base];
        for (int f = 0; f < 8; ++f) {
            auto bit = rng.below(2048);
            near[bit / 8] ^= std::uint8_t(1u << (bit % 8));
        }
        auto cands = idx.candidates(near.data());
        near_found += std::binary_search(cands.begin(), cands.end(),
                                         std::uint64_t(base));
        // Far query: fresh random item.
        std::vector<std::uint8_t> far(256);
        for (auto &b : far)
            b = std::uint8_t(rng.next());
        auto fcands = idx.candidates(far.data());
        far_found += std::binary_search(fcands.begin(), fcands.end(),
                                        std::uint64_t(base));
    }
    EXPECT_GT(near_found, 80);
    EXPECT_LT(far_found, 10);
}

TEST(Lsh, CandidatesAreDeduplicated)
{
    LshIndex idx(8, 4, 64);
    std::vector<std::uint8_t> item(64, 0xcc);
    idx.insert(1, item.data());
    auto cands = idx.candidates(item.data());
    // Item collides in all 8 tables but must appear once.
    ASSERT_EQ(cands.size(), 1u);
}

TEST(PageGraphTest, RandomGraphHasRequestedDegree)
{
    auto g = PageGraph::random(100, 4, 3);
    EXPECT_EQ(g.vertices(), 100u);
    for (std::uint64_t v = 0; v < 100; ++v) {
        EXPECT_EQ(g.neighbors(v).size(), 4u);
        for (auto u : g.neighbors(v)) {
            EXPECT_NE(u, v);
            EXPECT_LT(u, 100u);
        }
    }
}

TEST(PageGraphTest, SerializeParseRoundTrip)
{
    auto g = PageGraph::random(50, 6, 9);
    for (std::uint64_t v = 0; v < 50; ++v) {
        auto page = g.serialize(v, 512);
        EXPECT_EQ(page.size(), 512u);
        EXPECT_EQ(PageGraph::parse(page), g.neighbors(v));
    }
}

TEST(PageGraphTest, BfsDistancesAreSane)
{
    auto g = PageGraph::random(200, 4, 11);
    auto dist = g.bfs(0);
    EXPECT_EQ(dist[0], 0);
    // Random 4-regular digraph on 200 vertices: everything within a
    // few hops.
    for (std::uint64_t v = 0; v < 200; ++v) {
        ASSERT_GE(dist[v], 0) << v;
        EXPECT_LE(dist[v], 12) << v;
    }
}

TEST(PageGraphTest, BfsMatchesNeighborRelation)
{
    auto g = PageGraph::random(80, 3, 13);
    auto dist = g.bfs(5);
    for (std::uint64_t v = 0; v < 80; ++v) {
        if (dist[v] < 0)
            continue;
        for (auto u : g.neighbors(v))
            EXPECT_LE(dist[u], dist[v] + 1);
    }
}

TEST(Text, CorpusHasExactlyPlantedNeedles)
{
    std::string needle = "X7q";
    Corpus c = analytics::makeCorpus(100000, needle, 25, 3);
    ASSERT_EQ(c.text.size(), 100000u);
    ASSERT_EQ(c.needlePositions.size(), 25u);

    // Exhaustive scan finds exactly the planted occurrences.
    std::vector<std::uint64_t> found;
    for (std::size_t i = 0; i + needle.size() <= c.text.size(); ++i) {
        if (std::equal(needle.begin(), needle.end(),
                       c.text.begin() + long(i)))
            found.push_back(i);
    }
    EXPECT_EQ(found, c.needlePositions);
}

TEST(Text, PositionsAreSortedAndNonOverlapping)
{
    Corpus c = analytics::makeCorpus(50000, "Z9z", 40, 5);
    for (std::size_t i = 1; i < c.needlePositions.size(); ++i) {
        EXPECT_GT(c.needlePositions[i],
                  c.needlePositions[i - 1] + 2);
    }
}

TEST(Text, DeterministicForSeed)
{
    Corpus a = analytics::makeCorpus(10000, "Q1", 5, 7);
    Corpus b = analytics::makeCorpus(10000, "Q1", 5, 7);
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.needlePositions, b.needlePositions);
}
