/**
 * @file
 * Unit tests for the sparse NAND page store.
 */

#include <gtest/gtest.h>

#include <map>

#include "flash/page_store.hh"
#include "sim/random.hh"

using namespace bluedbm;
using flash::Address;
using flash::Geometry;
using flash::PageBuffer;
using flash::PageStore;
using flash::Status;

namespace {

PageBuffer
pattern(const Geometry &g, std::uint8_t seed)
{
    PageBuffer data(g.pageSize);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(seed + i);
    return data;
}

} // namespace

TEST(PageStore, ProgramReadRoundTrip)
{
    Geometry g = Geometry::tiny();
    PageStore store(g);
    Address a{0, 1, 2, 3};
    PageBuffer data = pattern(g, 7);
    EXPECT_EQ(store.program(a, data), Status::Ok);
    EXPECT_EQ(store.read(a), data);
    EXPECT_TRUE(store.isProgrammed(a));
}

TEST(PageStore, ReprogramWithoutEraseIsIllegal)
{
    Geometry g = Geometry::tiny();
    PageStore store(g);
    Address a{0, 0, 0, 0};
    EXPECT_EQ(store.program(a, pattern(g, 1)), Status::Ok);
    EXPECT_EQ(store.program(a, pattern(g, 2)), Status::IllegalWrite);
    // Original data still intact.
    EXPECT_EQ(store.read(a), pattern(g, 1));
}

TEST(PageStore, EraseEnablesReprogram)
{
    Geometry g = Geometry::tiny();
    PageStore store(g);
    Address a{1, 0, 3, 5};
    ASSERT_EQ(store.program(a, pattern(g, 1)), Status::Ok);
    ASSERT_EQ(store.eraseBlock(a), Status::Ok);
    EXPECT_FALSE(store.isProgrammed(a));
    EXPECT_EQ(store.program(a, pattern(g, 9)), Status::Ok);
    EXPECT_EQ(store.read(a), pattern(g, 9));
}

TEST(PageStore, EraseClearsWholeBlockOnly)
{
    Geometry g = Geometry::tiny();
    PageStore store(g);
    Address in_block{0, 0, 2, 0};
    Address other_block{0, 0, 3, 0};
    ASSERT_EQ(store.program(in_block, pattern(g, 1)), Status::Ok);
    ASSERT_EQ(store.program(other_block, pattern(g, 2)), Status::Ok);
    ASSERT_EQ(store.eraseBlock(in_block), Status::Ok);
    EXPECT_FALSE(store.isProgrammed(in_block));
    EXPECT_TRUE(store.isProgrammed(other_block));
    EXPECT_EQ(store.read(other_block), pattern(g, 2));
}

TEST(PageStore, SyntheticContentIsDeterministic)
{
    Geometry g = Geometry::tiny();
    PageStore s1(g, 99), s2(g, 99), s3(g, 100);
    Address a{1, 1, 4, 7};
    EXPECT_EQ(s1.read(a), s2.read(a));
    EXPECT_NE(s1.read(a), s3.read(a)); // different seed
    Address b{1, 1, 4, 8};
    EXPECT_NE(s1.read(a), s1.read(b)); // different address
}

TEST(PageStore, SyntheticPagesCarryValidEcc)
{
    Geometry g = Geometry::tiny();
    PageStore store(g);
    Address a{0, 1, 0, 2};
    std::vector<std::uint8_t> check;
    PageBuffer data = store.read(a, &check);
    auto expected = flash::Secded72::encode(data);
    EXPECT_EQ(check, expected);
}

TEST(PageStore, EraseCountsAccumulate)
{
    Geometry g = Geometry::tiny();
    PageStore store(g);
    Address a{0, 0, 1, 0};
    EXPECT_EQ(store.eraseCount(a), 0u);
    ASSERT_EQ(store.eraseBlock(a), Status::Ok);
    ASSERT_EQ(store.eraseBlock(a), Status::Ok);
    EXPECT_EQ(store.eraseCount(a), 2u);
    EXPECT_EQ(store.erases(), 2u);
}

TEST(PageStore, WearOutTurnsBlockBad)
{
    Geometry g = Geometry::tiny();
    PageStore store(g);
    store.setEraseLimit(3);
    Address a{0, 0, 0, 0};
    EXPECT_EQ(store.eraseBlock(a), Status::Ok);
    EXPECT_EQ(store.eraseBlock(a), Status::Ok);
    EXPECT_EQ(store.eraseBlock(a), Status::BadBlock);
    EXPECT_TRUE(store.isBad(a));
    EXPECT_EQ(store.program(a, pattern(g, 1)), Status::BadBlock);
}

TEST(PageStore, FactoryBadBlockRejectsOperations)
{
    Geometry g = Geometry::tiny();
    PageStore store(g);
    Address a{1, 0, 5, 0};
    store.markBad(a);
    EXPECT_EQ(store.program(a, pattern(g, 1)), Status::BadBlock);
    EXPECT_EQ(store.eraseBlock(a), Status::BadBlock);
}

TEST(PageStore, SequentialProgramEnforcement)
{
    Geometry g = Geometry::tiny();
    PageStore store(g);
    store.setRequireSequential(true);
    Address p0{0, 0, 0, 0}, p1{0, 0, 0, 1}, p3{0, 0, 0, 3};
    EXPECT_EQ(store.program(p0, pattern(g, 0)), Status::Ok);
    EXPECT_EQ(store.program(p3, pattern(g, 3)), Status::IllegalWrite);
    EXPECT_EQ(store.program(p1, pattern(g, 1)), Status::Ok);
}

TEST(PageStore, StoredPagesTracksRealData)
{
    Geometry g = Geometry::tiny();
    PageStore store(g);
    EXPECT_EQ(store.storedPages(), 0u);
    store.read(Address{0, 0, 0, 0}); // synthetic read stores nothing
    EXPECT_EQ(store.storedPages(), 0u);
    ASSERT_EQ(store.program(Address{0, 0, 0, 0}, pattern(g, 1)), Status::Ok);
    EXPECT_EQ(store.storedPages(), 1u);
    ASSERT_EQ(store.eraseBlock(Address{0, 0, 0, 0}), Status::Ok);
    EXPECT_EQ(store.storedPages(), 0u);
}

TEST(PageStore, EraseStatsCoverWholeCard)
{
    Geometry g = Geometry::tiny();
    PageStore store(g);
    auto zero = store.eraseStats();
    EXPECT_EQ(zero.min, 0u);
    EXPECT_EQ(zero.p50, 0u);
    EXPECT_EQ(zero.max, 0u);
    EXPECT_EQ(zero.total, 0u);

    // Two of the card's blocks erased, unevenly: untouched blocks
    // count as zero, so skewed wear shows up as min << max.
    Address a{0, 0, 0, 0}, b{1, 1, 3, 0};
    ASSERT_EQ(store.eraseBlock(a), Status::Ok);
    ASSERT_EQ(store.eraseBlock(a), Status::Ok);
    ASSERT_EQ(store.eraseBlock(a), Status::Ok);
    ASSERT_EQ(store.eraseBlock(b), Status::Ok);
    auto s = store.eraseStats();
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.p50, 0u); // 2 of 32 blocks touched: median still 0
    EXPECT_EQ(s.max, 3u);
    EXPECT_EQ(s.total, 4u);
}

TEST(PageStore, AddWearAgesWithoutTrippingEndurance)
{
    Geometry g = Geometry::tiny();
    PageStore store(g);
    Address a{0, 0, 0, 0};
    ASSERT_EQ(store.program(a, pattern(g, 3)), Status::Ok);
    store.setEraseLimit(100);

    // Pre-aging to (and past) the limit neither destroys contents
    // nor marks the block bad: addWear only moves the odometer.
    store.addWear(a, 150);
    EXPECT_EQ(store.eraseCount(a), 150u);
    EXPECT_FALSE(store.isBad(a));
    EXPECT_EQ(store.read(a), pattern(g, 3));
    EXPECT_EQ(store.badBlockCount(), 0u);

    // The next REAL erase is what trips the endurance check -- and
    // the aborted erase keeps the contents, so live pages of a
    // worn-out block can still be relocated.
    EXPECT_EQ(store.eraseBlock(a), Status::BadBlock);
    EXPECT_TRUE(store.isBad(a));
    EXPECT_EQ(store.badBlockCount(), 1u);
    EXPECT_EQ(store.read(a), pattern(g, 3));
    EXPECT_EQ(store.eraseStats().max, 151u);
}

/** Property: random program/erase sequences never corrupt other pages. */
TEST(PageStore, RandomOpsPreserveIndependence)
{
    Geometry g = Geometry::tiny();
    PageStore store(g);
    sim::Rng rng(21);
    std::map<std::uint64_t, std::uint8_t> expect; // linear -> seed

    for (int op = 0; op < 500; ++op) {
        Address a = Address::fromLinear(g, rng.below(g.pages()));
        if (rng.chance(0.7)) {
            auto seed = static_cast<std::uint8_t>(rng.next());
            if (store.program(a, pattern(g, seed)) == Status::Ok)
                expect[a.linearize(g)] = seed;
        } else {
            a.page = 0;
            if (store.eraseBlock(a) == Status::Ok) {
                for (std::uint32_t p = 0; p < g.pagesPerBlock; ++p) {
                    Address pa = a;
                    pa.page = p;
                    expect.erase(pa.linearize(g));
                }
            }
        }
    }
    for (const auto &[linear, seed] : expect) {
        Address a = Address::fromLinear(g, linear);
        EXPECT_EQ(store.read(a), pattern(g, seed));
    }
}
