/**
 * @file
 * Unit tests for InlineFunction: the move-only SBO callable the event
 * queue stores callbacks in.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

#include "sim/inline_function.hh"

using bluedbm::sim::InlineFunction;

namespace {

using Fn = InlineFunction<void(), 56>;
using IntFn = InlineFunction<int(int), 56>;

TEST(InlineFunction, DefaultIsEmpty)
{
    Fn f;
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, InvokesSmallCapture)
{
    int hits = 0;
    Fn f([&hits] { ++hits; });
    ASSERT_TRUE(static_cast<bool>(f));
    f();
    f();
    EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, ForwardsArgumentsAndReturn)
{
    IntFn f([](int x) { return x * 3; });
    EXPECT_EQ(f(14), 42);
}

TEST(InlineFunction, SmallCapturesAreStoredInline)
{
    struct Small
    {
        std::uint64_t a, b, c;
        void operator()() const {}
    };
    struct Big
    {
        std::uint64_t a[9];
        void operator()() const {}
    };
    EXPECT_TRUE(Fn::storedInline<Small>());
    EXPECT_FALSE(Fn::storedInline<Big>());
}

TEST(InlineFunction, LargeCapturesFallBackToHeapAndStillWork)
{
    std::uint64_t big[9] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::uint64_t sum = 0;
    Fn f([big, &sum] {
        for (auto v : big)
            sum += v;
    });
    Fn g(std::move(f));
    g();
    EXPECT_EQ(sum, 45u);
}

TEST(InlineFunction, MoveTransfersState)
{
    int hits = 0;
    Fn f([&hits] { ++hits; });
    Fn g(std::move(f));
    EXPECT_FALSE(static_cast<bool>(f)); // NOLINT: testing moved-from
    ASSERT_TRUE(static_cast<bool>(g));
    g();
    EXPECT_EQ(hits, 1);
}

TEST(InlineFunction, MoveAssignReplacesAndDestroysOld)
{
    auto counter = std::make_shared<int>(0);
    EXPECT_EQ(counter.use_count(), 1);
    Fn f([counter] { ++*counter; });
    EXPECT_EQ(counter.use_count(), 2);
    f = Fn([counter] { *counter += 10; });
    EXPECT_EQ(counter.use_count(), 2); // old capture released
    f();
    EXPECT_EQ(*counter, 10);
}

TEST(InlineFunction, MoveOnlyCallable)
{
    auto p = std::make_unique<int>(7);
    int got = 0;
    Fn f([p = std::move(p), &got] { got = *p; });
    Fn g;
    g = std::move(f);
    g();
    EXPECT_EQ(got, 7);
}

TEST(InlineFunction, ResetReleasesCapture)
{
    auto counter = std::make_shared<int>(0);
    Fn f([counter] { ++*counter; });
    EXPECT_EQ(counter.use_count(), 2);
    f.reset();
    EXPECT_FALSE(static_cast<bool>(f));
    EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineFunction, DestructorReleasesHeapFallback)
{
    auto counter = std::make_shared<int>(0);
    {
        std::uint64_t pad[8] = {};
        Fn f([counter, pad] { (void)pad[0]; });
        EXPECT_EQ(counter.use_count(), 2);
    }
    EXPECT_EQ(counter.use_count(), 1);
}

} // namespace
