/**
 * @file
 * Tests for the RFS-style log-structured file system, including the
 * physical-address query that feeds in-store processors.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flash/flash_card.hh"
#include "flash/flash_server.hh"
#include "fs/log_fs.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using flash::FlashCard;
using flash::FlashServer;
using flash::Geometry;
using flash::PageBuffer;
using flash::Status;
using flash::Timing;
using fs::LogFs;

namespace {

struct Fixture
{
    sim::Simulator sim;
    Geometry geo = Geometry::tiny();
    FlashCard card{sim, geo, Timing::fast(), 64};
    flash::FlashSplitter::Port &port{card.splitter().addPort(64)};
    FlashServer server{sim, port, 2, 16};
    LogFs fs{sim, server, 0, geo};

    std::vector<std::uint8_t>
    bytes(std::size_t n, std::uint8_t seed)
    {
        std::vector<std::uint8_t> v(n);
        for (std::size_t i = 0; i < n; ++i)
            v[i] = static_cast<std::uint8_t>(seed + i * 7);
        return v;
    }

    void
    appendSync(const std::string &name,
               std::vector<std::uint8_t> data)
    {
        bool ok = false;
        fs.append(name, std::move(data), [&](bool o) { ok = o; });
        sim.run();
        ASSERT_TRUE(ok);
    }

    std::vector<std::uint8_t>
    readSync(const std::string &name, std::uint64_t off,
             std::uint64_t len)
    {
        std::vector<std::uint8_t> out;
        fs.read(name, off, len,
                [&](std::vector<std::uint8_t> data, bool ok) {
            EXPECT_TRUE(ok);
            out = std::move(data);
        });
        sim.run();
        return out;
    }
};

} // namespace

TEST(LogFs, CreateExistsRemove)
{
    Fixture f;
    EXPECT_FALSE(f.fs.exists("a"));
    EXPECT_TRUE(f.fs.create("a"));
    EXPECT_FALSE(f.fs.create("a")); // duplicate
    EXPECT_TRUE(f.fs.exists("a"));
    EXPECT_EQ(f.fs.size("a"), 0u);
    EXPECT_TRUE(f.fs.remove("a"));
    EXPECT_FALSE(f.fs.exists("a"));
    EXPECT_FALSE(f.fs.remove("a"));
}

TEST(LogFs, ListIsSorted)
{
    Fixture f;
    ASSERT_TRUE(f.fs.create("zeta"));
    ASSERT_TRUE(f.fs.create("alpha"));
    ASSERT_TRUE(f.fs.create("mid"));
    auto names = f.fs.list();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "mid");
    EXPECT_EQ(names[2], "zeta");
}

TEST(LogFs, AppendReadRoundTripPageAligned)
{
    Fixture f;
    ASSERT_TRUE(f.fs.create("data"));
    auto payload = f.bytes(f.geo.pageSize * 3, 5);
    f.appendSync("data", payload);
    EXPECT_EQ(f.fs.size("data"), payload.size());
    EXPECT_EQ(f.readSync("data", 0, payload.size()), payload);
}

TEST(LogFs, AppendReadRoundTripUnaligned)
{
    Fixture f;
    ASSERT_TRUE(f.fs.create("data"));
    auto payload = f.bytes(f.geo.pageSize + 100, 3);
    f.appendSync("data", payload);
    EXPECT_EQ(f.fs.size("data"), payload.size());
    EXPECT_EQ(f.readSync("data", 0, payload.size()), payload);
}

TEST(LogFs, MultipleAppendsConcatenate)
{
    Fixture f;
    ASSERT_TRUE(f.fs.create("log"));
    auto a = f.bytes(300, 1);
    auto b = f.bytes(f.geo.pageSize, 2);
    auto c = f.bytes(77, 3);
    f.appendSync("log", a);
    f.appendSync("log", b);
    f.appendSync("log", c);
    ASSERT_EQ(f.fs.size("log"), a.size() + b.size() + c.size());

    auto all = f.readSync("log", 0, f.fs.size("log"));
    std::vector<std::uint8_t> expect = a;
    expect.insert(expect.end(), b.begin(), b.end());
    expect.insert(expect.end(), c.begin(), c.end());
    EXPECT_EQ(all, expect);
}

TEST(LogFs, SubRangeReads)
{
    Fixture f;
    ASSERT_TRUE(f.fs.create("data"));
    auto payload = f.bytes(f.geo.pageSize * 2 + 50, 9);
    f.appendSync("data", payload);
    for (std::uint64_t off : {0ul, 100ul, 511ul, 512ul, 1000ul}) {
        auto got = f.readSync("data", off, 64);
        std::vector<std::uint8_t> expect(
            payload.begin() + long(off),
            payload.begin() + long(off) + 64);
        EXPECT_EQ(got, expect) << "offset " << off;
    }
}

TEST(LogFs, ReadPastEndIsClipped)
{
    Fixture f;
    ASSERT_TRUE(f.fs.create("small"));
    f.appendSync("small", f.bytes(100, 4));
    auto got = f.readSync("small", 50, 1000);
    EXPECT_EQ(got.size(), 50u);
}

TEST(LogFs, PhysicalAddressesMatchContent)
{
    Fixture f;
    ASSERT_TRUE(f.fs.create("data"));
    auto payload = f.bytes(f.geo.pageSize * 4, 6);
    f.appendSync("data", payload);

    auto addrs = f.fs.physicalAddresses("data");
    ASSERT_EQ(addrs.size(), 4u);
    // Reading the raw physical pages must reproduce the file.
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        PageBuffer raw = f.card.nand().store().read(addrs[i]);
        for (std::uint32_t b = 0; b < f.geo.pageSize; ++b)
            ASSERT_EQ(raw[b], payload[i * f.geo.pageSize + b]);
    }
}

TEST(LogFs, PhysicalAddressesStripeAcrossBuses)
{
    Fixture f;
    ASSERT_TRUE(f.fs.create("data"));
    f.appendSync("data", f.bytes(f.geo.pageSize * 8, 7));
    auto addrs = f.fs.physicalAddresses("data");
    std::set<std::uint32_t> buses;
    for (const auto &a : addrs)
        buses.insert(a.bus);
    // Log allocation stripes blocks across buses for parallelism.
    EXPECT_GT(buses.size(), 1u);
}

TEST(LogFs, PublishHandleFeedsFlashServerAtu)
{
    Fixture f;
    ASSERT_TRUE(f.fs.create("data"));
    auto payload = f.bytes(f.geo.pageSize * 3, 8);
    f.appendSync("data", payload);
    f.fs.publishHandle("data", 77);

    // Stream through the flash server as an ISP would.
    std::vector<std::uint8_t> streamed;
    f.server.streamRead(1, 77, 0, 3,
                        [&](PageBuffer page, Status st) {
        EXPECT_NE(st, Status::Uncorrectable);
        streamed.insert(streamed.end(), page.begin(), page.end());
    });
    f.sim.run();
    ASSERT_EQ(streamed.size(), payload.size());
    EXPECT_EQ(streamed, payload);
}

TEST(LogFs, OverwriteTailDoesNotCorruptEarlierData)
{
    Fixture f;
    ASSERT_TRUE(f.fs.create("grow"));
    // Many small appends force repeated tail-page rewrites.
    std::vector<std::uint8_t> expect;
    for (int i = 0; i < 40; ++i) {
        auto chunk = f.bytes(97, std::uint8_t(i));
        expect.insert(expect.end(), chunk.begin(), chunk.end());
        f.appendSync("grow", chunk);
    }
    EXPECT_EQ(f.fs.size("grow"), expect.size());
    EXPECT_EQ(f.readSync("grow", 0, expect.size()), expect);
}

TEST(LogFs, CleanerReclaimsDeletedFiles)
{
    Fixture f;
    // Fill a good part of the card with short-lived files; the
    // cleaner must keep up and data must stay correct.
    std::uint64_t file_pages = 16;
    int generations = 30;
    for (int g = 0; g < generations; ++g) {
        std::string name = "tmp" + std::to_string(g % 3);
        if (f.fs.exists(name)) {
            ASSERT_TRUE(f.fs.remove(name));
        }
        ASSERT_TRUE(f.fs.create(name));
        f.appendSync(name,
                     f.bytes(f.geo.pageSize * file_pages,
                             std::uint8_t(g)));
    }
    EXPECT_GT(f.fs.blocksErased(), 0u);
    // Last three generations intact.
    for (int g = generations - 3; g < generations; ++g) {
        std::string name = "tmp" + std::to_string(g % 3);
        auto got = f.readSync(name, 0, f.fs.size(name));
        auto expect = f.bytes(f.geo.pageSize * file_pages,
                              std::uint8_t(g));
        EXPECT_EQ(got, expect) << name;
    }
}

TEST(LogFs, RandomWorkloadTorture)
{
    Fixture f;
    sim::Rng rng(7);
    std::map<std::string, std::vector<std::uint8_t>> reference;
    for (int op = 0; op < 200; ++op) {
        // std::string{} + ... sidesteps a gcc-12 -Wrestrict false
        // positive on the char* + string&& overload (PR 105651).
        std::string name =
            std::string("f") + std::to_string(rng.below(5));
        double dice = rng.uniform();
        if (dice < 0.55) {
            if (!f.fs.exists(name)) {
                ASSERT_TRUE(f.fs.create(name));
                reference[name] = {};
            }
            auto chunk = f.bytes(
                rng.below(2 * f.geo.pageSize) + 1,
                std::uint8_t(rng.next()));
            reference[name].insert(reference[name].end(),
                                   chunk.begin(), chunk.end());
            f.appendSync(name, chunk);
        } else if (dice < 0.75) {
            if (f.fs.exists(name)) {
                ASSERT_TRUE(f.fs.remove(name));
                reference.erase(name);
            }
        } else {
            if (f.fs.exists(name) && !reference[name].empty()) {
                auto &expect = reference[name];
                std::uint64_t off = rng.below(expect.size());
                std::uint64_t len =
                    rng.below(expect.size() - off) + 1;
                auto got = f.readSync(name, off, len);
                std::vector<std::uint8_t> want(
                    expect.begin() + long(off),
                    expect.begin() + long(off + len));
                ASSERT_EQ(got, want) << name << "@" << off;
            }
        }
    }
    // Final audit of every live file.
    for (const auto &[name, expect] : reference) {
        ASSERT_EQ(f.fs.size(name), expect.size());
        if (!expect.empty()) {
            EXPECT_EQ(f.readSync(name, 0, expect.size()), expect);
        }
    }
}

// ---------------------------------------------------------------- //
// Append-failure semantics (fault injection)
// ---------------------------------------------------------------- //

TEST(LogFs, AppendFailureReservesRangeAndPoisonsFreshPages)
{
    Fixture f;
    ASSERT_TRUE(f.fs.create("f"));
    auto payload = f.bytes(f.geo.pageSize * 2, 5);

    // Every program fails: the append must report failure, keep the
    // reserved byte range (offsets handed to concurrent appends
    // must stay stable), and poison the fresh pages so reads of the
    // range report failure instead of silently returning zeroes.
    f.server.setWriteFault(
        [](const flash::Address &) { return true; });
    bool ok = true;
    f.fs.append("f", payload, [&](bool o) { ok = o; });
    f.sim.run();
    EXPECT_FALSE(ok);
    EXPECT_EQ(f.fs.size("f"), payload.size());
    EXPECT_EQ(f.fs.pageWriteFailures(), 2u);

    bool read_ok = true;
    std::vector<std::uint8_t> got;
    f.fs.read("f", 0, payload.size(),
              [&](std::vector<std::uint8_t> data, bool o) {
        got = std::move(data);
        read_ok = o;
    });
    f.sim.run();
    EXPECT_FALSE(read_ok);
    EXPECT_EQ(got, std::vector<std::uint8_t>(payload.size(), 0));

    // Healthy again: new appends land after the reserved range and
    // read back fine; the poisoned range keeps reporting failure.
    f.server.setWriteFault(nullptr);
    auto tail = f.bytes(f.geo.pageSize, 9);
    f.appendSync("f", tail);
    EXPECT_EQ(f.readSync("f", payload.size(), tail.size()), tail);
    f.fs.read("f", 0, f.fs.size("f"),
              [&](std::vector<std::uint8_t>, bool o) {
        read_ok = o;
    });
    f.sim.run();
    EXPECT_FALSE(read_ok);
}

TEST(LogFs, FailedTailRewriteKeepsOldContentAndHeals)
{
    Fixture f;
    ASSERT_TRUE(f.fs.create("f"));
    auto first = f.bytes(100, 1);
    f.appendSync("f", first);

    // The tail-page rewrite fails: the aborted program leaves the
    // page's previous contents intact, so the bytes before the
    // failed append still read back correctly.
    f.server.setWriteFault(
        [](const flash::Address &) { return true; });
    auto second = f.bytes(50, 2);
    bool ok = true;
    f.fs.append("f", second, [&](bool o) { ok = o; });
    f.sim.run();
    EXPECT_FALSE(ok);
    EXPECT_EQ(f.fs.size("f"), 150u);
    EXPECT_EQ(f.readSync("f", 0, 100), first);

    // The failed bytes stayed staged in the in-memory tail: the
    // next successful append rewrites the shared tail page and
    // heals the whole range.
    f.server.setWriteFault(nullptr);
    auto third = f.bytes(30, 3);
    f.appendSync("f", third);
    std::vector<std::uint8_t> expect = first;
    expect.insert(expect.end(), second.begin(), second.end());
    expect.insert(expect.end(), third.begin(), third.end());
    EXPECT_EQ(f.fs.size("f"), expect.size());
    EXPECT_EQ(f.readSync("f", 0, expect.size()), expect);
}

// ---------------------------------------------------------------- //
// Read spreading onto a reserved spill interface
// ---------------------------------------------------------------- //

TEST(LogFs, ReadsSpreadToSpillInterfaceUnderLoad)
{
    sim::Simulator sim;
    Geometry geo = Geometry::tiny();
    FlashCard card{sim, geo, Timing::fast(), 64};
    auto &port = card.splitter().addPort(64);
    FlashServer server{sim, port, 2, 16};
    fs::FsParams params;
    params.spillInterface = 1;
    params.readSpreadDepth = 1; // spread as soon as one is queued
    LogFs lfs{sim, server, 0, geo, params};

    ASSERT_TRUE(lfs.create("hot"));
    std::vector<std::uint8_t> payload(geo.pageSize * 4);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = std::uint8_t(i * 13);
    bool ok = false;
    lfs.append("hot", payload, [&](bool o) { ok = o; });
    sim.run();
    ASSERT_TRUE(ok);

    // A burst of whole-file reads: the primary queue backs up and
    // page reads stripe onto the spill interface; the data stays
    // correct regardless of which interface served it.
    int done = 0;
    for (int i = 0; i < 8; ++i) {
        lfs.read("hot", 0, payload.size(),
                 [&](std::vector<std::uint8_t> data, bool o) {
            EXPECT_TRUE(o);
            EXPECT_EQ(data, payload);
            ++done;
        });
    }
    sim.run();
    EXPECT_EQ(done, 8);
    EXPECT_GT(lfs.spreadReads(), 0u);
}

// ---------------------------------------------------------------- //
// Tail-page group commit
// ---------------------------------------------------------------- //

TEST(LogFs, ConcurrentSmallAppendsGroupCommit)
{
    Fixture f;
    ASSERT_TRUE(f.fs.create("log"));

    // A burst of small appends issued back to back: rewrites of the
    // shared tail page arriving while one program is in flight must
    // batch into a single follow-up program, every ack must still
    // fire, and the contents must concatenate exactly.
    std::vector<std::uint8_t> expect;
    int acks = 0;
    bool all_ok = true;
    const int appends = 24;
    for (int i = 0; i < appends; ++i) {
        auto chunk = f.bytes(97, std::uint8_t(i + 1));
        expect.insert(expect.end(), chunk.begin(), chunk.end());
        f.fs.append("log", chunk, [&](bool ok) {
            all_ok = all_ok && ok;
            ++acks;
        });
    }
    f.sim.run();
    EXPECT_EQ(acks, appends);
    EXPECT_TRUE(all_ok);
    EXPECT_EQ(f.fs.size("log"), expect.size());
    EXPECT_EQ(f.readSync("log", 0, expect.size()), expect);
    // Far fewer programs than appends: the burst group-committed.
    EXPECT_GT(f.fs.batchedPageWrites(), 0u);
    EXPECT_LT(f.fs.pagesWritten(), unsigned(appends));
}

// ---------------------------------------------------------------- //
// Cross-file write batching (FlashServer program coalescing)
// ---------------------------------------------------------------- //

TEST(LogFs, CrossFileAppendsBatchOntoSharedProgramWindows)
{
    // One-bus geometry forces every append onto the same bus's
    // chips -- the collision case the coalescing stage exists for.
    // Concurrent small appends to DIFFERENT files each rewrite
    // their own tail page; without batching each pays a full tPROG
    // behind the others, with batching they flush as one command
    // group and share program windows.
    sim::Simulator sim;
    Geometry geo = Geometry::tiny();
    geo.buses = 1;
    geo.chipsPerBus = 2;
    FlashCard card{sim, geo, Timing::fast(), 64};
    auto &port = card.splitter().addPort(64);
    FlashServer server{sim, port, 3, 16};
    LogFs fs{sim, server, 0, geo}; // default FsParams: batching on

    const unsigned files = 4;
    for (unsigned i = 0; i < files; ++i)
        ASSERT_TRUE(fs.create("f" + std::to_string(i)));

    // Burst: every file appends at once, repeatedly.
    unsigned done = 0, rounds = 3;
    for (unsigned r = 0; r < rounds; ++r) {
        for (unsigned i = 0; i < files; ++i) {
            std::vector<std::uint8_t> data(64,
                                           std::uint8_t(r * 16 + i));
            fs.append("f" + std::to_string(i), std::move(data),
                      [&](bool ok) {
                EXPECT_TRUE(ok);
                ++done;
            });
        }
        sim.run();
    }
    EXPECT_EQ(done, files * rounds);

    // The stage saw cross-file concurrency and the NAND shared
    // program windows across it.
    EXPECT_GT(server.batchedWrites(), 0u);
    EXPECT_GT(card.nand().coalescedPrograms(), 0u);

    // Correctness: every file reads back exactly what it appended.
    for (unsigned i = 0; i < files; ++i) {
        std::vector<std::uint8_t> out;
        fs.read("f" + std::to_string(i), 0, 64 * rounds,
                [&](std::vector<std::uint8_t> data, bool ok) {
            EXPECT_TRUE(ok);
            out = std::move(data);
        });
        sim.run();
        ASSERT_EQ(out.size(), 64u * rounds);
        for (unsigned r = 0; r < rounds; ++r) {
            for (unsigned b = 0; b < 64; ++b)
                EXPECT_EQ(out[r * 64 + b],
                          std::uint8_t(r * 16 + i))
                    << "file " << i << " round " << r;
        }
    }
}

// ---------------------------------------------------------------- //
// Aged flash: poisoned pages, bad-block retirement, parked cleans
// ---------------------------------------------------------------- //

TEST(LogFs, UncorrectableReadPoisonsPageForGood)
{
    Fixture f;
    ASSERT_TRUE(f.fs.create("f"));
    auto payload = f.bytes(f.geo.pageSize * 2, 5);
    f.appendSync("f", payload);

    // Every sense fails (retry budget 0): the read reports failure
    // and the dead copies are unmapped -- poisoned -- so their
    // blocks stay reclaimable.
    f.server.setReadFault([](const flash::Address &) {
        FlashServer::ReadFaultAction act;
        act.uncorrectable = true;
        return act;
    });
    bool ok = true;
    f.fs.read("f", 0, payload.size(),
              [&](std::vector<std::uint8_t>, bool o) { ok = o; });
    f.sim.run();
    EXPECT_FALSE(ok);
    EXPECT_EQ(f.fs.poisonedPages(), 2u);

    // The hole is permanent even with the fault gone: the flash
    // copy was unmapped, so reads keep reporting failure (zeroes,
    // ok = false) until a replica one level up heals the range.
    f.server.setReadFault(nullptr);
    ok = true;
    std::vector<std::uint8_t> got;
    f.fs.read("f", 0, payload.size(),
              [&](std::vector<std::uint8_t> data, bool o) {
        got = std::move(data);
        ok = o;
    });
    f.sim.run();
    EXPECT_FALSE(ok);
    EXPECT_EQ(got, std::vector<std::uint8_t>(payload.size(), 0));
    EXPECT_EQ(f.fs.poisonedPages(), 2u); // no double poison
}

TEST(LogFs, BadBlockRetirementRelocatesAndPreservesOffsets)
{
    Fixture f;
    ASSERT_TRUE(f.fs.create("keep"));
    auto keep = f.bytes(f.geo.pageSize, 5);
    f.appendSync("keep", keep);
    auto before = f.fs.physicalAddresses("keep");
    ASSERT_EQ(before.size(), 1u);

    // The hardware declares keep's block bad: the next program
    // landing on that frontier fails with Status::BadBlock, the
    // block is remapped out of service, and its surviving live
    // page drains out at maintenance priority.
    f.card.nand().store().markBad(before[0]);
    ASSERT_TRUE(f.fs.create("filler"));
    unsigned acks = 0, fails = 0;
    for (int i = 0; i < 2; ++i) {
        f.fs.append("filler",
                    f.bytes(f.geo.pageSize, std::uint8_t(i)),
                    [&](bool o) {
            ++acks;
            fails += o ? 0 : 1;
        });
    }
    f.sim.run();
    EXPECT_EQ(acks, 2u);
    EXPECT_EQ(fails, 1u); // exactly the program on the bad block
    EXPECT_EQ(f.fs.retiredBlocks(), 1u);

    // "keep" survived with its byte offsets intact: same size,
    // same contents, new physical home off the retired block.
    EXPECT_EQ(f.fs.size("keep"), keep.size());
    EXPECT_EQ(f.readSync("keep", 0, keep.size()), keep);
    auto after = f.fs.physicalAddresses("keep");
    ASSERT_EQ(after.size(), 1u);
    EXPECT_NE(after[0].linearize(f.geo) / f.geo.pagesPerBlock,
              before[0].linearize(f.geo) / f.geo.pagesPerBlock);
    EXPECT_EQ(f.fs.pagesCleaned(), 1u); // the one relocation
}

TEST(LogFs, ProgramFaultMidCleanParksVictimInsteadOfErasing)
{
    Fixture f;
    // Interleave two files in uneven chunks so their pages mix
    // within blocks (the allocator round-robins buses per page),
    // then delete one: every closed block is a PART-live victim,
    // so cleaning must relocate before erasing. 150 rounds of 3
    // pages fill ~29 of the card's 32 blocks -- past the cleaner's
    // low water, without parking appends on the reserve.
    ASSERT_TRUE(f.fs.create("live"));
    ASSERT_TRUE(f.fs.create("dead"));
    std::vector<std::uint8_t> expect;
    for (int i = 0; i < 150; ++i) {
        auto chunk = f.bytes(f.geo.pageSize * 2, std::uint8_t(i));
        expect.insert(expect.end(), chunk.begin(), chunk.end());
        f.appendSync("live", chunk);
        f.appendSync("dead", f.bytes(f.geo.pageSize,
                                     std::uint8_t(0x80 + i)));
    }
    ASSERT_TRUE(f.fs.remove("dead"));

    // A bounded burst of program failures while the cleaner works:
    // relocation writes fail, the victim keeps its unmoved live
    // pages, and the pass must PARK it (no erase of data that
    // never moved, no panic) and retry later.
    int faults = 60;
    f.server.setWriteFault(
        [&](const flash::Address &) { return faults-- > 0; });
    ASSERT_TRUE(f.fs.create("spur"));
    for (int i = 0; i < 48; ++i) {
        // Enough single-page appends to drain the open frontiers
        // and force fresh block opens -- the events that kick
        // maybeClean below the low water.
        // Appends opening fresh blocks kick maybeClean; their own
        // programs may also eat faults, which is fine -- the
        // cleaner's relocations burn through the rest.
        f.fs.append("spur", f.bytes(f.geo.pageSize, 0x55),
                    [](bool) {});
        f.sim.run();
    }
    EXPECT_GT(f.fs.cleanParks(), 0u);

    // Device healed: cleaning resumes, reclaims the garbage, and
    // the surviving file is bit-exact -- parked passes never cost
    // data.
    f.server.setWriteFault(nullptr);
    for (int i = 0; i < 4; ++i)
        f.appendSync("live", f.bytes(64, std::uint8_t(0xf0 + i)));
    EXPECT_GT(f.fs.blocksErased(), 0u);
    EXPECT_EQ(f.readSync("live", 0, expect.size()), expect);
}
