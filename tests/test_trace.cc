/**
 * @file
 * Unit tests for the request tracer: span trees, sampling and slow
 * retention, stale-handle safety, and the Chrome JSON export.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/trace.hh"

using namespace bluedbm;
using sim::Tracer;

namespace {

Tracer::Params
keepAll()
{
    Tracer::Params p;
    p.enabled = true;
    p.sampleEvery = 1;
    return p;
}

} // namespace

TEST(Tracer, DisabledReturnsNullHandles)
{
    Tracer t;
    EXPECT_FALSE(t.enabled());
    auto root = t.beginTrace("kv.get", 100);
    EXPECT_EQ(root, 0u);
    // Every downstream call is a silent no-op on handle 0.
    EXPECT_EQ(t.beginSpan(root, "child", 110), 0u);
    t.endSpan(root, 120);
    t.mark(root, "m", 115);
    t.endTrace(root, 130);
    EXPECT_EQ(t.started(), 0u);
    EXPECT_TRUE(t.retained().empty());
}

TEST(Tracer, BuildsSpanTreeWithExactTimes)
{
    Tracer t;
    t.configure(keepAll());
    auto root = t.beginTrace("kv.get", 100, 42);
    auto route = t.beginSpan(root, "route", 110);
    auto rpc = t.beginSpan(route, "rpc", 120);
    auto netReq = t.beginSpan(rpc, "net.req", 120);
    t.endSpan(netReq, 150);
    // The remote side only holds netReq's handle; its shard span
    // must come out as a sibling (child of rpc), not a child.
    auto shard = t.beginSibling(netReq, "shard.get", 150);
    t.mark(shard, "cache.miss", 151);
    t.endSpan(shard, 300);
    t.endSpan(rpc, 330);
    t.endSpan(route, 330);
    t.endTrace(root, 335);

    ASSERT_EQ(t.retained().size(), 1u);
    const Tracer::Trace &tr = t.retained()[0];
    EXPECT_EQ(tr.key, 42u);
    ASSERT_EQ(tr.spans.size(), 5u);
    EXPECT_EQ(tr.spans[0].parent, Tracer::noParent);
    EXPECT_EQ(tr.spans[0].begin, 100u);
    EXPECT_EQ(tr.spans[0].end, 335u); // closed by endTrace
    EXPECT_STREQ(tr.spans[3].name, "net.req");
    EXPECT_EQ(tr.spans[3].parent, 2u); // child of rpc
    EXPECT_STREQ(tr.spans[4].name, "shard.get");
    EXPECT_EQ(tr.spans[4].parent, 2u); // SIBLING of net.req
    EXPECT_EQ(tr.spans[4].begin, 150u);
    EXPECT_EQ(tr.spans[4].end, 300u);
    ASSERT_EQ(tr.marks.size(), 1u);
    EXPECT_EQ(tr.marks[0].span, 4u);
    EXPECT_EQ(Tracer::depthOf(tr, 4), 3u);
    EXPECT_EQ(Tracer::depthOf(tr, 0), 0u);
}

TEST(Tracer, SamplingKeepsEveryNth)
{
    Tracer t;
    Tracer::Params p;
    p.enabled = true;
    p.sampleEvery = 10;
    t.configure(p);
    for (int i = 0; i < 100; ++i) {
        auto h = t.beginTrace("op", 10 * i);
        t.endTrace(h, 10 * i + 5);
    }
    EXPECT_EQ(t.started(), 100u);
    EXPECT_EQ(t.retainedSampled(), 10u);
    EXPECT_EQ(t.retained().size(), 10u);
    for (const auto &tr : t.retained())
        EXPECT_STREQ(tr.why, "sampled");
}

TEST(Tracer, SlowRequestLogIsAlwaysOn)
{
    Tracer t;
    Tracer::Params p;
    p.enabled = true;
    p.sampleEvery = 0; // no sampling at all
    p.slowThresholdTicks = 1000;
    t.configure(p);
    auto fast = t.beginTrace("op", 0);
    t.endTrace(fast, 999);
    auto slow = t.beginTrace("op", 2000);
    t.endTrace(slow, 3000); // exactly at threshold: slow
    EXPECT_EQ(t.retainedSlow(), 1u);
    ASSERT_EQ(t.retained().size(), 1u);
    EXPECT_STREQ(t.retained()[0].why, "slow");
    EXPECT_EQ(t.retained()[0].spans[0].begin, 2000u);
}

TEST(Tracer, StaleHandlesAfterRecycleAreIgnored)
{
    Tracer t;
    Tracer::Params p;
    p.enabled = true;
    p.sampleEvery = 0; // recycle everything
    t.configure(p);
    auto h1 = t.beginTrace("a", 0);
    auto child = t.beginSpan(h1, "c", 1);
    t.endTrace(h1, 10);
    // The slot recycles into a new trace; old handles must not
    // touch it (this is the late-straggler-response case).
    auto h2 = t.beginTrace("b", 20);
    t.endSpan(child, 25);
    t.mark(h1, "ghost", 26);
    EXPECT_EQ(t.beginSpan(child, "ghost", 27), 0u);
    auto c2 = t.beginSpan(h2, "c2", 28);
    t.endTrace(h2, 30);
    (void)c2;
    EXPECT_EQ(t.started(), 2u);
    EXPECT_TRUE(t.retained().empty());
}

TEST(Tracer, RetentionCapCountsDrops)
{
    Tracer t;
    Tracer::Params p;
    p.enabled = true;
    p.sampleEvery = 1;
    p.maxRetained = 3;
    t.configure(p);
    for (int i = 0; i < 10; ++i) {
        auto h = t.beginTrace("op", i);
        t.endTrace(h, i + 1);
    }
    EXPECT_EQ(t.retained().size(), 3u);
    EXPECT_EQ(t.droppedRetained(), 7u);
}

TEST(Tracer, ChromeJsonExportsCompleteEvents)
{
    Tracer t;
    t.configure(keepAll());
    auto root = t.beginTrace("kv.get", sim::usToTicks(10), 7);
    auto child = t.beginSpan(root, "route", sim::usToTicks(11));
    t.mark(child, "nand.suspend", sim::usToTicks(12));
    t.endSpan(child, sim::usToTicks(14));
    t.endTrace(root, sim::usToTicks(15));

    std::string path = ::testing::TempDir() + "trace_ut.json";
    ASSERT_TRUE(t.writeChromeJson(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string json = ss.str();
    // Structural spot checks (the CI gate runs a real JSON parser).
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"kv.get\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"parent\":-1"), std::string::npos);
    EXPECT_NE(json.find("\"parent\":0"), std::string::npos);
    // ts is simulated microseconds: the root begins at 10us.
    EXPECT_NE(json.find("\"ts\":10.000000"), std::string::npos);
    std::remove(path.c_str());
}
