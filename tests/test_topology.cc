/**
 * @file
 * Tests for topology builders and validation.
 */

#include <gtest/gtest.h>

#include "net/topology.hh"

using namespace bluedbm;
using net::LinkSpec;
using net::Topology;

TEST(Topology, RingIsValid)
{
    auto t = Topology::ring(20, 4);
    EXPECT_TRUE(t.valid()) << t.validate();
    EXPECT_EQ(t.nodes, 20u);
    // 20 nodes x 4 lanes = 80 cables.
    EXPECT_EQ(t.links.size(), 80u);
}

TEST(Topology, LineIsValid)
{
    auto t = Topology::line(5);
    EXPECT_TRUE(t.valid()) << t.validate();
    EXPECT_EQ(t.links.size(), 4u);
}

TEST(Topology, Mesh2dIsValid)
{
    auto t = Topology::mesh2d(4, 5);
    EXPECT_TRUE(t.valid()) << t.validate();
    EXPECT_EQ(t.nodes, 20u);
    // Grid edges: (w-1)*h + w*(h-1) = 3*5 + 4*4 = 31.
    EXPECT_EQ(t.links.size(), 31u);
}

TEST(Topology, DistributedStarIsValid)
{
    auto t = Topology::distributedStar(20, 4);
    EXPECT_TRUE(t.valid()) << t.validate();
    // Hub interconnect C(4,2)=6 plus 16 leaf uplinks = 22.
    EXPECT_EQ(t.links.size(), 22u);
}

TEST(Topology, FatTreeIsValid)
{
    auto t = Topology::fatTree(15, 2);
    EXPECT_TRUE(t.valid()) << t.validate();
}

TEST(Topology, FullyConnectedIsValid)
{
    auto t = Topology::fullyConnected(5);
    EXPECT_TRUE(t.valid()) << t.validate();
    EXPECT_EQ(t.links.size(), 10u);
}

TEST(Topology, PortBudgetRespected)
{
    // Every builder must stay within 8 ports per node.
    for (const auto &t :
         {Topology::ring(20, 4), Topology::mesh2d(5, 4),
          Topology::distributedStar(20, 4), Topology::fatTree(15, 2),
          Topology::fullyConnected(9)}) {
        std::vector<unsigned> used(t.nodes, 0);
        for (const auto &l : t.links) {
            ++used[l.nodeA];
            ++used[l.nodeB];
        }
        for (unsigned n = 0; n < t.nodes; ++n)
            EXPECT_LE(used[n], t.portsPerNode);
    }
}

TEST(Topology, DetectsPortReuse)
{
    Topology t;
    t.nodes = 2;
    t.links.push_back(LinkSpec{0, 0, 1, 0});
    t.links.push_back(LinkSpec{0, 0, 1, 1}); // port 0 of node 0 reused
    EXPECT_FALSE(t.valid());
    EXPECT_NE(t.validate().find("used twice"), std::string::npos);
}

TEST(Topology, DetectsSelfLoop)
{
    Topology t;
    t.nodes = 2;
    t.links.push_back(LinkSpec{0, 0, 0, 1});
    EXPECT_NE(t.validate().find("self-loop"), std::string::npos);
}

TEST(Topology, DetectsDisconnection)
{
    Topology t;
    t.nodes = 4;
    t.links.push_back(LinkSpec{0, 0, 1, 0});
    t.links.push_back(LinkSpec{2, 0, 3, 0});
    EXPECT_NE(t.validate().find("disconnected"), std::string::npos);
}

TEST(Topology, DetectsOutOfRangeNode)
{
    Topology t;
    t.nodes = 2;
    t.links.push_back(LinkSpec{0, 0, 5, 0});
    EXPECT_NE(t.validate().find("out of range"), std::string::npos);
}
