/**
 * @file
 * Unit and property tests for flash geometry and addressing.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "flash/geometry.hh"
#include "sim/random.hh"

using namespace bluedbm;
using flash::Address;
using flash::Geometry;

TEST(Geometry, DefaultCapacityIs512GB)
{
    Geometry g;
    // 8 buses x 8 chips x 4096 blocks x 256 pages x 8 KB = 512 GiB.
    EXPECT_EQ(g.capacityBytes(), 549755813888ull);
    EXPECT_EQ(g.chips(), 64u);
}

TEST(Geometry, TinyGeometryIsConsistent)
{
    Geometry g = Geometry::tiny();
    EXPECT_EQ(g.pages(),
              std::uint64_t(g.buses) * g.chipsPerBus * g.blocksPerChip *
                  g.pagesPerBlock);
}

TEST(Address, ValidityChecks)
{
    Geometry g = Geometry::tiny();
    Address ok{0, 0, 0, 0};
    EXPECT_TRUE(ok.validFor(g));
    Address bad_bus{g.buses, 0, 0, 0};
    EXPECT_FALSE(bad_bus.validFor(g));
    Address bad_page{0, 0, 0, g.pagesPerBlock};
    EXPECT_FALSE(bad_page.validFor(g));
}

TEST(Address, LinearizeRoundTripProperty)
{
    Geometry g = Geometry::tiny();
    sim::Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t linear = rng.below(g.pages());
        Address a = Address::fromLinear(g, linear);
        EXPECT_TRUE(a.validFor(g));
        EXPECT_EQ(a.linearize(g), linear);
    }
}

TEST(Address, LinearizeIsBijective)
{
    Geometry g = Geometry::tiny();
    std::vector<bool> seen(g.pages(), false);
    for (std::uint32_t bus = 0; bus < g.buses; ++bus) {
        for (std::uint32_t chip = 0; chip < g.chipsPerBus; ++chip) {
            for (std::uint32_t blk = 0; blk < g.blocksPerChip; ++blk) {
                for (std::uint32_t p = 0; p < g.pagesPerBlock; ++p) {
                    Address a{bus, chip, blk, p};
                    auto l = a.linearize(g);
                    ASSERT_LT(l, g.pages());
                    EXPECT_FALSE(seen[l]);
                    seen[l] = true;
                }
            }
        }
    }
}

TEST(Address, StripedSpreadsAcrossBuses)
{
    Geometry g;
    // Consecutive striped indices must hit distinct buses until all
    // buses are covered (maximum bus parallelism for sequential I/O).
    for (std::uint64_t base = 0; base < 4; ++base) {
        std::set<std::uint32_t> buses;
        for (std::uint32_t i = 0; i < g.buses; ++i) {
            Address a = Address::fromStriped(g, base * g.buses + i);
            buses.insert(a.bus);
        }
        EXPECT_EQ(buses.size(), g.buses);
    }
}

TEST(Address, StripedStaysValidAcrossRange)
{
    Geometry g = Geometry::tiny();
    for (std::uint64_t i = 0; i < g.pages(); ++i) {
        Address a = Address::fromStriped(g, i);
        ASSERT_TRUE(a.validFor(g)) << "index " << i;
    }
}

TEST(Address, EqualityAndToString)
{
    Address a{1, 2, 3, 4};
    Address b{1, 2, 3, 4};
    Address c{1, 2, 3, 5};
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
    EXPECT_EQ(a.toString(), "b1.c2.blk3.p4");
}
