/**
 * @file
 * Tests for the in-store SQL table scan (paper section 8 planned
 * work): schema packing, predicate semantics, and full scans
 * validated against a reference filter.
 */

#include <gtest/gtest.h>

#include <vector>

#include "flash/flash_card.hh"
#include "flash/flash_server.hh"
#include "fs/log_fs.hh"
#include "isp/table_scan.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using flash::FlashCard;
using flash::FlashServer;
using flash::Geometry;
using flash::Timing;
using isp::CmpOp;
using isp::Predicate;
using isp::RecordSchema;
using isp::ScanResult;
using isp::TableScanEngine;

namespace {

/** id u32 | value u64 | flag u8. */
RecordSchema
testSchema()
{
    return RecordSchema({4, 8, 1});
}

struct Fixture
{
    sim::Simulator sim;
    Geometry geo = Geometry::tiny();
    FlashCard card{sim, geo, Timing::fast(), 128};
    flash::FlashSplitter::Port &port{card.splitter().addPort(64)};
    FlashServer server{sim, port, 4, 16};
    fs::LogFs fs{sim, server, 0, geo};
    TableScanEngine engine{sim, server};
    RecordSchema schema = testSchema();
    std::vector<std::vector<std::uint64_t>> table; //!< reference rows

    /** Build and store a table of @p rows records. */
    void
    load(std::uint64_t rows, std::uint64_t seed = 3)
    {
        sim::Rng rng(seed);
        std::uint32_t per_page = schema.recordsPerPage(geo.pageSize);
        std::uint64_t pages = (rows + per_page - 1) / per_page;
        std::vector<std::uint8_t> bytes(pages * geo.pageSize, 0);
        for (std::uint64_t r = 0; r < rows; ++r) {
            std::uint64_t page_idx = r / per_page;
            std::uint8_t *rec = bytes.data() +
                page_idx * geo.pageSize +
                (r % per_page) * schema.recordBytes();
            std::uint64_t id = r;
            std::uint64_t value = rng.below(1000);
            std::uint64_t flag = rng.below(2);
            schema.store(rec, 0, id);
            schema.store(rec, 1, value);
            schema.store(rec, 2, flag);
            table.push_back({id, value, flag});
        }
        ASSERT_TRUE(fs.create("table"));
        bool ok = false;
        fs.append("table", bytes, [&](bool o) { ok = o; });
        sim.run();
        ASSERT_TRUE(ok);
        fs.publishHandle("table", 8);
    }

    ScanResult
    scan(std::vector<Predicate> preds)
    {
        ScanResult out;
        bool done = false;
        engine.scan(8, schema, table.size(), geo.pageSize,
                    std::move(preds), [&](ScanResult r) {
            out = std::move(r);
            done = true;
        });
        sim.run();
        EXPECT_TRUE(done);
        return out;
    }

    std::vector<std::uint64_t>
    reference(const std::vector<Predicate> &preds)
    {
        std::vector<std::uint64_t> rows;
        for (std::uint64_t r = 0; r < table.size(); ++r) {
            bool ok = true;
            for (const auto &p : preds)
                ok = ok && p.matches(table[r][p.column]);
            if (ok)
                rows.push_back(r);
        }
        return rows;
    }
};

} // namespace

TEST(RecordSchema, PackingAndExtraction)
{
    RecordSchema s({4, 8, 1});
    EXPECT_EQ(s.recordBytes(), 13u);
    EXPECT_EQ(s.columns(), 3u);
    EXPECT_EQ(s.offset(0), 0u);
    EXPECT_EQ(s.offset(1), 4u);
    EXPECT_EQ(s.offset(2), 12u);

    std::vector<std::uint8_t> rec(13, 0);
    s.store(rec.data(), 0, 0xdeadbeef);
    s.store(rec.data(), 1, 0x1122334455667788ull);
    s.store(rec.data(), 2, 0x5a);
    EXPECT_EQ(s.extract(rec.data(), 0), 0xdeadbeefu);
    EXPECT_EQ(s.extract(rec.data(), 1), 0x1122334455667788ull);
    EXPECT_EQ(s.extract(rec.data(), 2), 0x5au);
}

TEST(RecordSchema, RecordsPerPage)
{
    RecordSchema s({4, 8, 1}); // 13 bytes
    EXPECT_EQ(s.recordsPerPage(512), 39u);
    EXPECT_EQ(s.recordsPerPage(8192), 630u);
}

TEST(PredicateTest, AllOperators)
{
    using P = Predicate;
    EXPECT_TRUE((P{0, CmpOp::Eq, 5}.matches(5)));
    EXPECT_FALSE((P{0, CmpOp::Eq, 5}.matches(6)));
    EXPECT_TRUE((P{0, CmpOp::Ne, 5}.matches(6)));
    EXPECT_TRUE((P{0, CmpOp::Lt, 5}.matches(4)));
    EXPECT_FALSE((P{0, CmpOp::Lt, 5}.matches(5)));
    EXPECT_TRUE((P{0, CmpOp::Le, 5}.matches(5)));
    EXPECT_TRUE((P{0, CmpOp::Gt, 5}.matches(6)));
    EXPECT_TRUE((P{0, CmpOp::Ge, 5}.matches(5)));
    EXPECT_FALSE((P{0, CmpOp::Ge, 5}.matches(4)));
}

TEST(TableScan, FullScanWithNoPredicatesReturnsAllRows)
{
    Fixture f;
    f.load(500);
    ScanResult res = f.scan({});
    EXPECT_EQ(res.rows.size(), 500u);
    EXPECT_EQ(res.rowsScanned, 500u);
    for (std::uint64_t r = 0; r < 500; ++r)
        EXPECT_EQ(res.rows[r], r);
}

TEST(TableScan, SinglePredicateMatchesReference)
{
    Fixture f;
    f.load(800);
    std::vector<Predicate> preds{{1, CmpOp::Lt, 100}};
    ScanResult res = f.scan(preds);
    EXPECT_EQ(res.rows, f.reference(preds));
    // ~10% selectivity expected.
    EXPECT_GT(res.rows.size(), 40u);
    EXPECT_LT(res.rows.size(), 160u);
}

TEST(TableScan, ConjunctionMatchesReference)
{
    Fixture f;
    f.load(800);
    std::vector<Predicate> preds{
        {1, CmpOp::Ge, 200},
        {1, CmpOp::Lt, 700},
        {2, CmpOp::Eq, 1},
    };
    ScanResult res = f.scan(preds);
    EXPECT_EQ(res.rows, f.reference(preds));
}

TEST(TableScan, ReturnedRecordBytesAreTheMatchingRecords)
{
    Fixture f;
    f.load(300);
    std::vector<Predicate> preds{{2, CmpOp::Eq, 0}};
    ScanResult res = f.scan(preds);
    ASSERT_EQ(res.records.size(),
              res.rows.size() * f.schema.recordBytes());
    for (std::size_t i = 0; i < res.rows.size(); ++i) {
        const std::uint8_t *rec =
            res.records.data() + i * f.schema.recordBytes();
        EXPECT_EQ(f.schema.extract(rec, 0), res.rows[i]);
        EXPECT_EQ(f.schema.extract(rec, 2), 0u);
    }
}

TEST(TableScan, EmptyResultOnImpossiblePredicate)
{
    Fixture f;
    f.load(200);
    ScanResult res = f.scan({{1, CmpOp::Gt, 5000}});
    EXPECT_TRUE(res.rows.empty());
    EXPECT_TRUE(res.records.empty());
    EXPECT_EQ(res.rowsScanned, 200u);
}

TEST(TableScan, RowCountNotMultipleOfPageCapacity)
{
    Fixture f;
    // tiny pages hold 39 records; 101 rows spans 2.6 pages.
    f.load(101);
    ScanResult res = f.scan({});
    EXPECT_EQ(res.rows.size(), 101u);
    EXPECT_EQ(res.rowsScanned, 101u);
}

TEST(TableScan, SegmentBoundariesPreserveRowOrder)
{
    Fixture f;
    f.load(1000);
    std::vector<Predicate> preds{{2, CmpOp::Eq, 1}};
    ScanResult res = f.scan(preds);
    auto expect = f.reference(preds);
    ASSERT_EQ(res.rows, expect);
    for (std::size_t i = 1; i < res.rows.size(); ++i)
        EXPECT_LT(res.rows[i - 1], res.rows[i]);
}

TEST(TableScanDeath, OversizedRecordIsFatal)
{
    Fixture f;
    f.load(10);
    RecordSchema wide({8, 8, 8, 8, 8, 8, 8, 8,
                       8, 8, 8, 8, 8, 8, 8, 8});
    // 128-byte records fit; but a fake page size smaller than the
    // record must be rejected.
    EXPECT_DEATH(f.engine.scan(8, wide, 1, 64, {},
                               [](ScanResult) {}),
                 "larger than a page");
}
