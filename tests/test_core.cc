/**
 * @file
 * Integration tests for the BlueDBM node and cluster: global address
 * space, the four access paths, and the remote read service.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/cluster.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using core::Cluster;
using core::ClusterParams;
using core::GlobalAddress;
using flash::PageBuffer;
using sim::Tick;

namespace {

ClusterParams
tinyCluster(unsigned nodes)
{
    ClusterParams p;
    p.topology = nodes == 2 ? net::Topology::line(2)
                            : net::Topology::ring(nodes, 2);
    p.node.geometry = flash::Geometry::tiny();
    p.node.timing = flash::Timing::fast();
    p.node.cards = 2;
    p.node.controllerTags = 64;
    return p;
}

} // namespace

TEST(Cluster, GlobalAddressRoundTrip)
{
    sim::Simulator sim;
    Cluster cluster(sim, tinyCluster(4));
    std::uint64_t pages = cluster.globalPages();
    EXPECT_EQ(pages, 4ull * 2 *
                  flash::Geometry::tiny().pages());
    for (std::uint64_t i = 0; i < pages; i += pages / 97 + 1) {
        GlobalAddress ga = cluster.globalPage(i);
        EXPECT_LT(ga.node, 4);
        EXPECT_LT(ga.card, 2);
        EXPECT_TRUE(ga.addr.validFor(flash::Geometry::tiny()));
        EXPECT_EQ(cluster.globalIndex(ga), i);
    }
}

TEST(Cluster, ConsecutiveGlobalPagesSpreadAcrossNodes)
{
    sim::Simulator sim;
    Cluster cluster(sim, tinyCluster(4));
    std::set<net::NodeId> nodes;
    for (std::uint64_t i = 0; i < 4; ++i)
        nodes.insert(cluster.globalPage(i).node);
    EXPECT_EQ(nodes.size(), 4u);
}

TEST(Cluster, IspReadLocalReturnsData)
{
    sim::Simulator sim;
    Cluster cluster(sim, tinyCluster(2));
    flash::Address addr{0, 0, 0, 0};
    PageBuffer expect =
        cluster.node(0).card(0).nand().store().read(addr);
    PageBuffer got;
    cluster.node(0).ispReadLocal(0, addr,
                                 [&](PageBuffer d) {
        got = std::move(d);
    });
    sim.run();
    EXPECT_EQ(got, expect);
}

TEST(Cluster, IspReadRemoteReturnsRemoteData)
{
    sim::Simulator sim;
    Cluster cluster(sim, tinyCluster(2));
    flash::Address addr{1, 0, 2, 3};
    PageBuffer expect =
        cluster.node(1).card(1).nand().store().read(addr);
    PageBuffer got;
    cluster.node(0).ispReadRemote(1, 1, addr,
                                  [&](PageBuffer d) {
        got = std::move(d);
    });
    sim.run();
    EXPECT_EQ(got, expect);
    EXPECT_EQ(cluster.node(1).remoteReadsServed(), 1u);
}

TEST(Cluster, AccessPathLatencyOrdering)
{
    // The paper's central latency result (figure 12): ISP-F beats
    // H-F beats H-RH-F; H-D sits between H-F and H-RH-F.
    sim::Simulator sim;
    Cluster cluster(sim, tinyCluster(2));
    flash::Address addr{0, 0, 0, 0};

    auto timed = [&](auto issue) {
        Tick start = sim.now();
        bool done = false;
        Tick at = 0;
        issue([&](PageBuffer) {
            done = true;
            at = sim.now();
        });
        sim.run();
        EXPECT_TRUE(done);
        return at - start;
    };

    Tick isp_f = timed([&](auto cb) {
        cluster.node(0).ispReadRemote(1, 0, addr, cb);
    });
    Tick h_f = timed([&](auto cb) {
        cluster.node(0).hostReadRemote(1, 0, addr, cb);
    });
    Tick h_rh_f = timed([&](auto cb) {
        cluster.node(0).hostReadRemoteViaHost(1, 0, addr, cb);
    });
    Tick h_d = timed([&](auto cb) {
        cluster.node(0).hostReadRemoteDram(
            1, flash::Geometry::tiny().pageSize, cb);
    });

    EXPECT_LT(isp_f, h_f);
    EXPECT_LT(h_f, h_rh_f);
    EXPECT_LT(h_d, h_rh_f); // no storage access
    EXPECT_GT(h_d, h_f - h_f / 2);
}

TEST(Cluster, HostReadLocalIncludesSoftwareCosts)
{
    sim::Simulator sim;
    Cluster cluster(sim, tinyCluster(2));
    flash::Address addr{0, 0, 0, 0};

    Tick isp_at = 0, host_at = 0;
    cluster.node(0).ispReadLocal(0, addr,
                                 [&](PageBuffer) {
        isp_at = sim.now();
    });
    sim.run();
    Tick base = sim.now();
    cluster.node(0).hostReadLocal(0, addr,
                                  [&](PageBuffer) {
        host_at = sim.now();
    });
    sim.run();
    const auto &sw = cluster.node(0).software();
    const auto &pcie = cluster.node(0).params().pcie;
    Tick sw_cost = sw.requestSetup + pcie.rpcLatency +
        pcie.interruptLatency;
    EXPECT_GT(host_at - base, isp_at + sw_cost - sim::usToTicks(1));
}

TEST(Cluster, ManyRemoteReadsAllComplete)
{
    sim::Simulator sim;
    Cluster cluster(sim, tinyCluster(4));
    int done = 0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
        GlobalAddress ga = cluster.globalPage(
            std::uint64_t(i) * 37 % cluster.globalPages());
        cluster.node(0).ispReadRemote(ga.node, ga.card, ga.addr,
                                      [&](PageBuffer) { ++done; });
    }
    sim.run();
    EXPECT_EQ(done, n);
}

TEST(Cluster, RemoteDramReadSkipsStorage)
{
    sim::Simulator sim;
    Cluster cluster(sim, tinyCluster(2));
    bool done = false;
    cluster.node(0).hostReadRemoteDram(1, 4096, [&](PageBuffer d) {
        EXPECT_EQ(d.size(), 4096u);
        done = true;
    });
    sim.run();
    EXPECT_TRUE(done);
    // No flash reads happened anywhere.
    EXPECT_EQ(cluster.node(1).card(0).nand().pagesRead(), 0u);
    EXPECT_EQ(cluster.node(1).card(1).nand().pagesRead(), 0u);
}

TEST(Cluster, FsAndFtlCoexistOnOneNode)
{
    sim::Simulator sim;
    Cluster cluster(sim, tinyCluster(2));
    auto &node = cluster.node(0);

    ASSERT_TRUE(node.fs().create("file"));
    std::vector<std::uint8_t> data(1000, 0x42);
    bool fs_ok = false;
    node.fs().append("file", data, [&](bool ok) { fs_ok = ok; });

    bool ftl_ok = false;
    node.ftl().write(
        0, PageBuffer(flash::Geometry::tiny().pageSize, 7),
        [&](bool ok) { ftl_ok = ok; });
    sim.run();
    EXPECT_TRUE(fs_ok);
    EXPECT_TRUE(ftl_ok);
}

TEST(Cluster, CapacityMatchesPaperScale)
{
    // With default geometry, a 20-node cluster holds 20 TB of flash
    // (the paper's headline capacity).
    ClusterParams p;
    p.topology = net::Topology::ring(20, 4);
    sim::Simulator sim;
    // Do not build full-size nodes (memory); just check arithmetic.
    std::uint64_t per_card = flash::Geometry{}.capacityBytes();
    std::uint64_t total = per_card * 2 * 20;
    EXPECT_NEAR(double(total) / 1e12, 22.0, 1.0);
}
