/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/random.hh"

using namespace bluedbm;

TEST(Rng, SameSeedSameStream)
{
    sim::Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    sim::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInBounds)
{
    sim::Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversRange)
{
    sim::Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    sim::Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo = saw_lo || v == 5;
        saw_hi = saw_hi || v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    sim::Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    sim::Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    sim::Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}
