/**
 * @file
 * Unit tests for the pooled message payloads (PayloadPool /
 * PayloadRef) that replaced std::any in net::Message.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hh"
#include "net/payload.hh"
#include "net/topology.hh"
#include "sim/simulator.hh"

using bluedbm::net::PayloadPool;
using bluedbm::net::PayloadRef;

namespace {

TEST(Payload, DefaultIsEmpty)
{
    PayloadRef ref;
    EXPECT_FALSE(static_cast<bool>(ref));
    EXPECT_FALSE(ref.is<int>());
}

TEST(Payload, InlineRoundTrip)
{
    PayloadRef ref = PayloadRef::inlineOf(42);
    ASSERT_TRUE(ref.is<int>());
    EXPECT_FALSE(ref.is<unsigned>());
    EXPECT_EQ(ref.take<int>(), 42);
    EXPECT_FALSE(static_cast<bool>(ref)); // consumed
}

TEST(Payload, PoolChoosesInlineForSmallTrivialTypes)
{
    PayloadPool pool;
    PayloadRef ref = pool.make(std::uint64_t(7));
    EXPECT_EQ(pool.slotCount(), 0u); // no slab slot consumed
    EXPECT_EQ(ref.take<std::uint64_t>(), 7u);
}

TEST(Payload, PooledRoundTripAndSlotReuse)
{
    struct Request
    {
        std::uint64_t id;
        std::array<std::uint8_t, 24> blob;
        std::vector<int> live; // non-trivial => pooled
    };

    PayloadPool pool;
    for (std::uint64_t i = 0; i < 100; ++i) {
        Request rq{i, {}, {int(i), int(i + 1)}};
        PayloadRef ref = pool.make(std::move(rq));
        ASSERT_TRUE(ref.is<Request>());
        Request out = ref.take<Request>();
        EXPECT_EQ(out.id, i);
        EXPECT_EQ(out.live.size(), 2u);
    }
    // One payload in flight at a time: the slab never grows past one
    // slot and every release recycles it.
    EXPECT_EQ(pool.slotCount(), 1u);
    EXPECT_EQ(pool.liveSlots(), 0u);
}

TEST(Payload, DropWithoutTakeReleasesSlot)
{
    PayloadPool pool;
    {
        PayloadRef ref = pool.make(std::string("payload data"));
        EXPECT_TRUE(static_cast<bool>(ref));
    }
    EXPECT_EQ(pool.liveSlots(), 0u);
    {
        PayloadRef ref = pool.make(std::string("again"));
        ref.reset();
        EXPECT_FALSE(static_cast<bool>(ref));
    }
    EXPECT_EQ(pool.liveSlots(), 0u);
    EXPECT_EQ(pool.slotCount(), 1u);
}

TEST(Payload, MoveTransfersOwnership)
{
    PayloadPool pool;
    PayloadRef a = pool.make(std::string("moved"));
    PayloadRef b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a)); // NOLINT: testing moved-from
    ASSERT_TRUE(b.is<std::string>());
    EXPECT_EQ(b.take<std::string>(), "moved");
    EXPECT_EQ(pool.liveSlots(), 0u);
}

TEST(Payload, OversizedTypesFallBackToHeap)
{
    struct Huge
    {
        std::array<std::uint8_t, 256> blob{};
        std::vector<int> live;
    };
    static_assert(sizeof(Huge) > PayloadPool::slotBytes);

    PayloadPool pool;
    Huge h;
    h.blob[0] = 0xab;
    h.live = {1, 2, 3};
    PayloadRef ref = pool.make(std::move(h));
    EXPECT_EQ(pool.slotCount(), 0u); // slab bypassed
    Huge out = ref.take<Huge>();
    EXPECT_EQ(out.blob[0], 0xab);
    EXPECT_EQ(out.live.size(), 3u);
}

TEST(Payload, ManyInFlightGrowToHighWaterMarkOnly)
{
    PayloadPool pool;
    std::vector<PayloadRef> inflight;
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 64; ++i)
            inflight.push_back(pool.make(std::string("x")));
        EXPECT_EQ(pool.liveSlots(), 64u);
        inflight.clear();
        EXPECT_EQ(pool.liveSlots(), 0u);
    }
    EXPECT_EQ(pool.slotCount(), 64u); // high-water mark, no more
}

TEST(Payload, PoolSurvivesNetworkTeardownWithEventsPending)
{
    // Messages escape into the simulator's event queue as captured
    // lambdas. Destroying the network before those events fire must
    // not dangle or abort: the simulator retains the payload pool
    // until after its queue destructs. (Only destruction is safe --
    // the sim must not *run* further, as pending events also hold
    // pointers into the dead network.)
    using namespace bluedbm;
    sim::Simulator sim;
    {
        net::StorageNetwork net(sim, net::Topology::line(2));
        for (int i = 0; i < 8; ++i)
            net.endpoint(0, 1).send(1, 4096,
                                    std::string("page payload"));
        // Stop mid-flight: serialization + hop take ~4.5us.
        sim.runUntil(sim::nsToTicks(100));
    }
    // Network gone; pending delivery events still hold payloads.
    // Draining (into destroyed endpoints is impossible -- the events
    // captured lane pointers) must not run; just destroy the sim
    // with the queue non-empty.
    EXPECT_FALSE(sim.idle());
}

TEST(PayloadDeath, WrongTypePanics)
{
    PayloadRef ref = PayloadRef::inlineOf(5);
    EXPECT_DEATH((void)ref.take<float>(), "different type");
}

TEST(PayloadDeath, EmptyTakePanics)
{
    PayloadRef ref;
    EXPECT_DEATH((void)ref.take<int>(), "different type");
}

} // namespace
