/**
 * @file
 * Cross-module integration tests: the whole appliance exercised end
 * to end -- cluster-scale smoke, FS + ISP + network combined flows,
 * multi-application accelerator sharing, and failure injection.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "analytics/text.hh"
#include "core/cluster.hh"
#include "isp/scheduler.hh"
#include "isp/string_search.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using core::Cluster;
using core::ClusterParams;
using core::GlobalAddress;
using flash::PageBuffer;
using sim::Tick;

namespace {

ClusterParams
smallCluster(net::Topology topo)
{
    ClusterParams p;
    p.topology = std::move(topo);
    p.node.geometry = flash::Geometry::tiny();
    p.node.timing = flash::Timing::fast();
    return p;
}

} // namespace

TEST(Integration, TwentyNodeRingSmoke)
{
    // The paper's rack: 20 nodes on a ring with 4 lanes each way.
    sim::Simulator sim;
    Cluster cluster(sim, smallCluster(net::Topology::ring(20, 4)));
    ASSERT_EQ(cluster.size(), 20u);

    // Every node reads a page from every other node's flash via the
    // integrated network.
    int done = 0, expected = 0;
    for (unsigned src = 0; src < 20; ++src) {
        for (unsigned dst = 0; dst < 20; ++dst) {
            if (src == dst)
                continue;
            ++expected;
            flash::Address addr{0, 0, 0, std::uint32_t(src % 16)};
            cluster.node(src).ispReadRemote(
                net::NodeId(dst), dst % 2, addr,
                [&](PageBuffer page) {
                EXPECT_FALSE(page.empty());
                ++done;
            });
        }
    }
    sim.run();
    EXPECT_EQ(done, expected);
}

TEST(Integration, RemoteReadsReturnExactRemoteBytes)
{
    // Write distinct data on every node via the FS, then audit the
    // whole cluster from node 0 through raw remote reads.
    sim::Simulator sim;
    Cluster cluster(sim, smallCluster(net::Topology::ring(4, 2)));
    std::map<unsigned, std::vector<std::uint8_t>> payloads;
    for (unsigned n = 0; n < 4; ++n) {
        auto &node = cluster.node(n);
        ASSERT_TRUE(node.fs().create("shard"));
        std::vector<std::uint8_t> data(3000 + n * 100);
        sim::Rng rng(n);
        for (auto &b : data)
            b = std::uint8_t(rng.next());
        payloads[n] = data;
        bool ok = false;
        node.fs().append("shard", data, [&](bool o) { ok = o; });
        sim.run();
        ASSERT_TRUE(ok);
    }

    for (unsigned n = 0; n < 4; ++n) {
        auto addrs = cluster.node(n).fs().physicalAddresses("shard");
        std::vector<std::uint8_t> got;
        for (const auto &a : addrs) {
            cluster.node(0).ispReadRemote(
                net::NodeId(n), 0, a, [&](PageBuffer page) {
                got.insert(got.end(), page.begin(), page.end());
            });
            sim.run();
        }
        got.resize(payloads[n].size());
        EXPECT_EQ(got, payloads[n]) << "node " << n;
    }
}

TEST(Integration, DistributedSearchAcrossNodes)
{
    // Each node stores a shard with planted needles; in-store
    // engines on every node search their shard concurrently and the
    // host merges results -- a cluster-wide grep.
    sim::Simulator sim;
    Cluster cluster(sim, smallCluster(net::Topology::ring(4, 2)));
    std::string needle = "Gl0bal?";
    std::map<unsigned, std::vector<std::uint64_t>> expected;

    for (unsigned n = 0; n < 4; ++n) {
        auto corpus = analytics::makeCorpus(30000, needle, 5,
                                            500 + n);
        expected[n] = corpus.needlePositions;
        auto &node = cluster.node(n);
        ASSERT_TRUE(node.fs().create("hay"));
        bool ok = false;
        node.fs().append("hay", corpus.text,
                         [&](bool o) { ok = o; });
        sim.run();
        ASSERT_TRUE(ok);
        node.ispServer(0).defineHandle(
            3, node.fs().physicalAddresses("hay"));
    }

    std::map<unsigned, std::vector<std::uint64_t>> found;
    std::vector<std::unique_ptr<isp::StringSearchEngine>> engines;
    for (unsigned n = 0; n < 4; ++n) {
        engines.emplace_back(std::make_unique<isp::StringSearchEngine>(
            sim, cluster.node(n).ispServer(0)));
        engines.back()->search(
            3, cluster.node(n).fs().size("hay"),
            flash::Geometry::tiny().pageSize, needle,
            [&found, n](isp::SearchResult r) {
            found[n] = std::move(r.positions);
        });
    }
    sim.run();
    for (unsigned n = 0; n < 4; ++n)
        EXPECT_EQ(found[n], expected[n]) << "node " << n;
}

TEST(Integration, SchedulerSharesEnginesAcrossApplications)
{
    // Two "applications" each submit many NN-style jobs to a pool of
    // two accelerator units; FIFO sharing must interleave them and
    // complete everything.
    sim::Simulator sim;
    Cluster cluster(sim, smallCluster(net::Topology::line(2)));
    isp::AcceleratorScheduler sched(sim, 2);
    const auto &geo = flash::Geometry::tiny();

    std::map<int, int> completed;
    for (int job = 0; job < 24; ++job) {
        int app = job % 2;
        sched.submit([&, app](unsigned, std::function<void()> rel) {
            flash::Address addr = flash::Address::fromLinear(
                geo, std::uint64_t(app * 37) % geo.pages());
            cluster.node(0).ispReadLocal(
                0, addr, [&, app, rel](PageBuffer) {
                ++completed[app];
                rel();
            });
        });
    }
    sim.run();
    EXPECT_EQ(completed[0], 12);
    EXPECT_EQ(completed[1], 12);
    EXPECT_EQ(sched.granted(), 24u);
}

TEST(Integration, UncorrectableErrorsSurfaceThroughFullStack)
{
    // Failure injection: crank the bit error rate so high that
    // multi-bit errors occur, and verify the status propagates from
    // NAND through controller, splitter and flash server.
    sim::Simulator sim;
    Cluster cluster(sim, smallCluster(net::Topology::line(2)));
    auto &node = cluster.node(0);
    node.card(0).nand().setBitErrorRate(2e-4);

    int uncorrectable = 0, total = 300;
    for (int i = 0; i < total; ++i) {
        flash::Address addr = flash::Address::fromLinear(
            flash::Geometry::tiny(),
            std::uint64_t(i) % flash::Geometry::tiny().pages());
        node.ispServer(0).readPage(
            unsigned(i % 4), addr,
            [&](PageBuffer, flash::Status st) {
            if (st == flash::Status::Uncorrectable)
                ++uncorrectable;
        });
    }
    sim.run();
    // BER 2e-4 over 4608-bit codewords: double-bit word errors are
    // common enough to observe in 300 pages.
    EXPECT_GT(uncorrectable, 0);
    EXPECT_GT(node.card(0).nand().bitsCorrected(), 0u);
}

TEST(Integration, TopologyConfigRoundTripDrivesCluster)
{
    // Build a cluster from a parsed config file (the paper's way of
    // populating routing tables) and run traffic over it.
    std::string config =
        "# three nodes in a triangle\n"
        "nodes 3\n"
        "ports 8\n"
        "link 0 0 1 0\n"
        "link 1 1 2 0\n"
        "link 2 1 0 1\n";
    auto topo = net::Topology::fromConfig(config);
    EXPECT_EQ(topo.nodes, 3u);
    EXPECT_EQ(topo.links.size(), 3u);
    // Round trip through the serializer.
    auto again = net::Topology::fromConfig(topo.toConfig());
    EXPECT_EQ(again.links.size(), topo.links.size());

    sim::Simulator sim;
    Cluster cluster(sim, smallCluster(topo));
    int got = 0;
    for (unsigned s = 0; s < 3; ++s) {
        for (unsigned d = 0; d < 3; ++d) {
            if (s == d)
                continue;
            cluster.node(s).ispReadRemote(
                net::NodeId(d), 0, flash::Address{0, 0, 0, 0},
                [&](PageBuffer) { ++got; });
        }
    }
    sim.run();
    EXPECT_EQ(got, 6);
}

TEST(IntegrationDeath, MalformedConfigsAreFatal)
{
    EXPECT_DEATH(net::Topology::fromConfig("link 0 0 1 0\n"),
                 "missing the 'nodes'");
    EXPECT_DEATH(net::Topology::fromConfig("nodes 2\nlink 0 0\n"),
                 "link needs");
    EXPECT_DEATH(net::Topology::fromConfig("nodes 2\nfrobnicate\n"),
                 "unknown directive");
    EXPECT_DEATH(
        net::Topology::fromConfig("nodes 2\nlink 0 0 1 0 9\n"),
        "trailing junk");
    EXPECT_DEATH(net::Topology::fromConfig("nodes 0\n"),
                 "bad node count");
}

TEST(Integration, FsAndFtlSurviveConcurrentRemoteTraffic)
{
    // Local FS writes, FTL writes and remote agent reads all share
    // each card's controller; everything must complete and verify.
    sim::Simulator sim;
    Cluster cluster(sim, smallCluster(net::Topology::line(2)));
    auto &n0 = cluster.node(0);
    const auto page = flash::Geometry::tiny().pageSize;

    ASSERT_TRUE(n0.fs().create("busy"));
    bool fs_ok = false, ftl_ok = false;
    n0.fs().append("busy", std::vector<std::uint8_t>(page * 3, 0x33),
                   [&](bool ok) { fs_ok = ok; });
    n0.ftl().write(5, PageBuffer(page, 0x44),
                   [&](bool ok) { ftl_ok = ok; });

    // Meanwhile node 1 hammers node 0's agent port.
    int remote_done = 0;
    for (int i = 0; i < 50; ++i) {
        cluster.node(1).ispReadRemote(
            0, 1, flash::Address{1, 0, 1, std::uint32_t(i % 16)},
            [&](PageBuffer) { ++remote_done; });
    }
    sim.run();
    EXPECT_TRUE(fs_ok);
    EXPECT_TRUE(ftl_ok);
    EXPECT_EQ(remote_done, 50);

    auto read_back = [&](const std::string &name) {
        std::vector<std::uint8_t> got;
        n0.fs().read(name, 0, page * 3,
                     [&](std::vector<std::uint8_t> d, bool) {
            got = std::move(d);
        });
        sim.run();
        return got;
    };
    EXPECT_EQ(read_back("busy"),
              std::vector<std::uint8_t>(page * 3, 0x33));
}
