/**
 * @file
 * Tests for the baseline device models and the resource/power
 * models.
 */

#include <gtest/gtest.h>

#include "baseline/ethernet.hh"
#include "baseline/hdd.hh"
#include "baseline/ram_cloud.hh"
#include "baseline/ssd.hh"
#include "resource/fpga_model.hh"
#include "resource/power_model.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using baseline::EthernetLink;
using baseline::EthernetParams;
using baseline::HardDisk;
using baseline::HddParams;
using baseline::OffTheShelfSsd;
using baseline::RamCloudParams;
using baseline::RamCloudWorkload;
using baseline::SsdParams;
using sim::Tick;

TEST(Ssd, SequentialReachesRatedBandwidth)
{
    sim::Simulator sim;
    OffTheShelfSsd ssd(sim, SsdParams{});
    const int pages = 2000;
    Tick last = 0;
    for (int i = 0; i < pages; ++i)
        ssd.read(std::uint64_t(i), 8192, [&] { last = sim.now(); });
    sim.run();
    double rate = sim::bytesPerSec(8192ull * pages, last);
    EXPECT_NEAR(rate, 600e6, 600e6 * 0.05);
    EXPECT_EQ(ssd.sequentialReads(), std::uint64_t(pages) - 1);
}

TEST(Ssd, RandomIsMuchSlowerThanSequential)
{
    sim::Simulator sim;
    OffTheShelfSsd ssd(sim, SsdParams{});
    const int pages = 2000;
    Tick last = 0;
    sim::Rng rng(3);
    for (int i = 0; i < pages; ++i) {
        ssd.read(rng.below(1u << 20) * 2, 8192,
                 [&] { last = sim.now(); });
    }
    sim.run();
    double rate = sim::bytesPerSec(8192ull * pages, last);
    // 4 channels x ~10K IOPS = ~40K IOPS = ~327 MB/s ceiling.
    EXPECT_LT(rate, 400e6);
    EXPECT_GT(rate, 200e6);
}

TEST(Hdd, SequentialStreamsAtPlatterRate)
{
    sim::Simulator sim;
    HardDisk disk(sim, HddParams{});
    const int pages = 1000;
    Tick last = 0;
    for (int i = 0; i < pages; ++i)
        disk.read(std::uint64_t(i), 8192, [&] { last = sim.now(); });
    sim.run();
    double rate = sim::bytesPerSec(8192ull * pages, last);
    // First access seeks; the rest stream.
    EXPECT_GT(rate, 100e6);
    EXPECT_EQ(disk.seeks(), 1u);
}

TEST(Hdd, RandomAccessesPaySeeks)
{
    sim::Simulator sim;
    HardDisk disk(sim, HddParams{});
    Tick last = 0;
    const int n = 50;
    sim::Rng rng(5);
    for (int i = 0; i < n; ++i)
        disk.read(rng.below(1u << 24) * 2, 8192,
                  [&] { last = sim.now(); });
    sim.run();
    // ~8 ms per op: 50 ops take ~400 ms.
    EXPECT_GT(last, sim::msToTicks(350));
    EXPECT_EQ(disk.seeks(), std::uint64_t(n));
}

TEST(RamCloud, PureDramScalesWithThreadsUntilBandwidth)
{
    auto throughput = [](unsigned threads) {
        sim::Simulator sim;
        host::HostCpu cpu(sim, 24);
        RamCloudWorkload work(sim, cpu, RamCloudParams{});
        Tick finish = 0;
        const std::uint64_t items = 4000;
        work.run(threads, items, [&] { finish = sim.now(); });
        sim.run();
        return double(items) / sim::ticksToSec(finish);
    };
    double t1 = throughput(1);
    double t4 = throughput(4);
    double t16 = throughput(16);
    EXPECT_NEAR(t4 / t1, 4.0, 0.5);      // linear at low threads
    EXPECT_LT(t16 / t1, 16.0);           // saturates eventually
    EXPECT_NEAR(t1, 43500, 4000);        // ~1/23us per thread
}

TEST(RamCloud, SmallMissFractionCollapsesThroughput)
{
    // The paper's headline ram-cloud result: 10% flash misses or 5%
    // disk misses crater performance (figure 17).
    auto throughput = [](double miss, Tick penalty) {
        sim::Simulator sim;
        host::HostCpu cpu(sim, 24);
        RamCloudParams p;
        p.missFraction = miss;
        p.missPenalty = penalty;
        RamCloudWorkload work(sim, cpu, p);
        Tick finish = 0;
        const std::uint64_t items = 3000;
        work.run(8, items, [&] { finish = sim.now(); });
        sim.run();
        return double(items) / sim::ticksToSec(finish);
    };
    double pure = throughput(0.0, 0);
    double flash10 = throughput(0.10, sim::usToTicks(750));
    double disk5 = throughput(0.05, sim::msToTicks(12));
    EXPECT_GT(pure, 300000.0);
    EXPECT_LT(flash10, 90000.0);
    EXPECT_LT(disk5, 15000.0);
    EXPECT_GT(pure / flash10, 3.5);
    EXPECT_GT(pure / disk5, 20.0);
}

TEST(Ethernet, LatencyIs100xIntegratedNetwork)
{
    sim::Simulator sim;
    EthernetLink eth(sim, EthernetParams{});
    Tick at = 0;
    eth.send(16, [&] { at = sim.now(); });
    sim.run();
    // Integrated network: 0.48 us/hop. Ethernet: >= 50 us.
    EXPECT_GE(at, sim::usToTicks(50));
    EXPECT_GE(double(at) / double(sim::nsToTicks(480)), 100.0);
}

TEST(ResourceModel, Table1TotalsMatchPaper)
{
    auto rows = resource::flashControllerUsage(
        resource::FlashControllerConfig{});
    auto total = resource::totalUsage(rows, "Artix-7 Total");
    EXPECT_EQ(total.luts, 75225u);
    EXPECT_EQ(total.registers, 62801u);
    EXPECT_EQ(total.bram36, 181u);

    // Utilization percentages as published: 56% LUTs, 23% regs,
    // 50% BRAM.
    auto device = resource::artix7();
    EXPECT_NEAR(resource::percent(total.luts, device.luts), 56, 1);
    EXPECT_NEAR(resource::percent(total.registers, device.registers),
                23, 1);
    EXPECT_NEAR(resource::percent(total.bram36, device.bram36), 50,
                1);
}

TEST(ResourceModel, Table1RowsMatchPaper)
{
    auto rows = resource::flashControllerUsage(
        resource::FlashControllerConfig{});
    // Bus controller row: 8 instances of 7131/4870/21.
    EXPECT_EQ(rows[0].instances, 8u);
    EXPECT_EQ(rows[0].luts, 7131u);
    EXPECT_EQ(rows[0].registers, 4870u);
    EXPECT_EQ(rows[0].bram36, 21u);
    // ECC decoder group: 1790/1233/2.
    EXPECT_EQ(rows[1].luts, 1790u);
    EXPECT_EQ(rows[1].registers, 1233u);
    // SerDes: 3061/3463/13.
    EXPECT_EQ(rows[5].luts, 3061u);
    EXPECT_EQ(rows[5].registers, 3463u);
    EXPECT_EQ(rows[5].bram36, 13u);
}

TEST(ResourceModel, Table2TotalsMatchPaper)
{
    auto rows = resource::hostFpgaUsage(resource::HostFpgaConfig{});
    auto total = resource::totalUsage(rows, "Virtex-7 Total");
    EXPECT_EQ(total.luts, 135271u);
    EXPECT_EQ(total.registers, 135897u);
    EXPECT_EQ(total.bram36, 224u);
    EXPECT_EQ(total.bram18, 18u);

    auto device = resource::virtex7();
    EXPECT_NEAR(resource::percent(total.luts, device.luts), 45, 1);
    EXPECT_NEAR(resource::percent(total.registers, device.registers),
                22, 1);
}

TEST(ResourceModel, CostsScaleWithDesignKnobs)
{
    resource::HostFpgaConfig small;
    small.networkPorts = 2;
    resource::HostFpgaConfig big;
    big.networkPorts = 8;
    auto s = resource::totalUsage(resource::hostFpgaUsage(small),
                                  "s");
    auto b = resource::totalUsage(resource::hostFpgaUsage(big), "b");
    EXPECT_LT(s.luts, b.luts);

    resource::FlashControllerConfig strong;
    strong.eccDecodersPerBus = 4;
    auto base = resource::totalUsage(
        resource::flashControllerUsage(
            resource::FlashControllerConfig{}),
        "base");
    auto ecc = resource::totalUsage(
        resource::flashControllerUsage(strong), "ecc");
    EXPECT_GT(ecc.luts, base.luts);
}

TEST(PowerModel, Table3MatchesPaper)
{
    resource::NodePower power;
    EXPECT_DOUBLE_EQ(power.vc707Watts, 30.0);
    EXPECT_DOUBLE_EQ(power.deviceWatts(), 40.0);
    EXPECT_DOUBLE_EQ(power.totalWatts(), 240.0);
    // "BlueDBM adds less than 20% of power consumption."
    EXPECT_LT(power.deviceFraction(), 0.20);
}

TEST(PowerModel, RamCloudComparisonIsOrderOfMagnitude)
{
    resource::ClusterComparison cmp;
    EXPECT_EQ(cmp.ramcloudServers(), 80u);
    EXPECT_GT(cmp.powerAdvantage(), 5.0);
    EXPECT_DOUBLE_EQ(cmp.bluedbmWatts(), 4800.0);
}
