#!/usr/bin/env bash
#
# CI gate: build the release and sanitizer presets, run the full
# test suite on both (any ASan/UBSan finding fails the run), then
# regenerate the tracked perf JSONs (BENCH_kernel.json from the
# kernel ablation, BENCH_kv.json from the KV service bench) so the
# perf trajectory stays machine-readable across PRs.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "=== release: configure + build ==="
cmake --preset release
cmake --build --preset release -j"${JOBS}"

echo "=== release: ctest ==="
ctest --preset release -j"${JOBS}"

echo "=== sanitize (ASan+UBSan): configure + build ==="
cmake --preset sanitize
cmake --build --preset sanitize -j"${JOBS}"

echo "=== sanitize: ctest ==="
# halt_on_error turns any UBSan diagnostic into a test failure
# (ASan aborts on its own); leak detection stays on by default.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --preset sanitize -j"${JOBS}"

echo "=== sanitize: hot-key KV smoke ==="
# One tiny skewed serving run end to end (preload + Zipfian traffic
# + hot-key cache + read coalescing/spreading + group commit) under
# ASan/UBSan; --smoke writes no JSON.
if [[ -x build-sanitize/svc_kv ]]; then
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ./build-sanitize/svc_kv --smoke
else
    echo "build-sanitize/svc_kv missing (google-benchmark not found?)" >&2
    exit 1
fi

echo "=== sanitize: quorum fault-injection smoke ==="
# W=1 puts against a node that fails every NAND program: quorum
# acks must still complete Ok, divergence must be counted, and one
# anti-entropy sweep must drain it to zero -- under ASan/UBSan.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-sanitize/svc_kv --smoke-quorum

echo "=== sanitize: node-kill + rebuild smoke ==="
# Fail-stop crash mid-phase under live load, Background-priority
# rebuild, final anti-entropy sweep: the binary itself gates zero
# post-rebuild divergence and a kill-window p99 within 3x of
# steady state -- under ASan/UBSan.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-sanitize/svc_kv --kill-node

echo "=== sanitize: ring-expansion smoke ==="
# A standby node joins mid-phase: dual-write handoff, throttled
# catch-up, atomic ring flip; gates zero divergence, moved keys,
# and a handoff-window p99 within 3x of steady -- under ASan/UBSan.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-sanitize/svc_kv --expand

echo "=== regenerate tracked bench JSONs ==="
if [[ -x build/ablation_kernel && -x build/svc_kv ]]; then
    ./build/ablation_kernel
    ./build/svc_kv
else
    echo "bench binaries missing (google-benchmark not found?)" >&2
    exit 1
fi

echo "=== perf smoke gate (BENCH_kv.json) ==="
# The serving perf floors: 20-node throughput must hold >= 1.9M
# ops/s, the 4-node config (the one program interference used to
# sink) must hold >= 400k, the quorum-acked write tail must stay
# within 1.6x of the read tail, and read-priority suspension must
# actually engage under the mixed load (a silently disabled
# suspend-resume path would pass every latency gate on a lucky
# run). Catches regressions of the put path (quorum/batching), the
# read path, or the suspension machinery underneath both.
bench_field() {
    awk -F'[:,]' -v k="\"$1\"" '$1 ~ k { gsub(/[[:space:]]/, "", $2); print $2 }' \
        BENCH_kv.json
}
tput20="$(bench_field nodes20_tput_ops)"
tput4="$(bench_field nodes4_tput_ops)"
rp99="$(bench_field quorum_w1_read_p99_us)"
wp99="$(bench_field quorum_w1_write_p99_us)"
div="$(bench_field quorum_w1_divergent_after_sweep)"
susp="$(bench_field nodes20_suspended_programs)"
if [[ -z "$tput20" || -z "$tput4" || -z "$rp99" || -z "$wp99" ||
      -z "$div" || -z "$susp" ]]; then
    echo "perf gate: BENCH_kv.json missing fields" >&2
    exit 1
fi
awk -v t="$tput20" 'BEGIN { exit !(t + 0 >= 1900000) }' || {
    echo "perf gate: 20-node throughput $tput20 < 1.9M ops/s" >&2
    exit 1
}
awk -v t="$tput4" 'BEGIN { exit !(t + 0 >= 400000) }' || {
    echo "perf gate: 4-node throughput $tput4 < 400k ops/s" >&2
    exit 1
}
awk -v w="$wp99" -v r="$rp99" 'BEGIN { exit !(w + 0 <= 1.6 * r) }' || {
    echo "perf gate: write p99 ${wp99}us > 1.6x read p99 ${rp99}us" >&2
    exit 1
}
awk -v d="$div" 'BEGIN { exit !(d + 0 == 0) }' || {
    echo "perf gate: divergence survived the repair sweep" >&2
    exit 1
}
awk -v s="$susp" 'BEGIN { exit !(s + 0 > 0) }' || {
    echo "perf gate: suspension never engaged at 20 nodes" >&2
    exit 1
}
echo "perf gate ok: tput ${tput20}/${tput4} ops/s (20n/4n)," \
     "W=1 read p99 ${rp99}us, write p99 ${wp99}us," \
     "post-sweep divergence ${div}, ${susp} suspended programs"

echo "=== membership gate (BENCH_kv.json) ==="
# Elastic-membership floors at 20 nodes: crashing a node must not
# blow the serving tail past 3x steady state during detection, the
# rebuild must leave zero divergence and actually ride the
# Background flash class, and the ring expansion must move keys
# while holding the same 3x transition bound.
ksteady="$(bench_field member_kill_steady_p99_us)"
kwindow="$(bench_field member_kill_window_p99_us)"
kdiv="$(bench_field member_kill_divergent_final)"
kbgw="$(bench_field member_kill_bg_writes)"
krep="$(bench_field member_kill_rebuild_repairs)"
esteady="$(bench_field member_expand_steady_p99_us)"
ewindow="$(bench_field member_expand_window_p99_us)"
ediv="$(bench_field member_expand_divergent_final)"
emoved="$(bench_field member_expand_moved_keys)"
if [[ -z "$ksteady" || -z "$kwindow" || -z "$kdiv" || -z "$kbgw" ||
      -z "$krep" || -z "$esteady" || -z "$ewindow" ||
      -z "$ediv" || -z "$emoved" ]]; then
    echo "membership gate: BENCH_kv.json missing fields" >&2
    exit 1
fi
awk -v w="$kwindow" -v s="$ksteady" 'BEGIN { exit !(w + 0 <= 3 * s) }' || {
    echo "membership gate: kill-window p99 ${kwindow}us > 3x steady ${ksteady}us" >&2
    exit 1
}
awk -v d="$kdiv" 'BEGIN { exit !(d + 0 == 0) }' || {
    echo "membership gate: divergence survived the rebuild" >&2
    exit 1
}
awk -v r="$krep" -v b="$kbgw" 'BEGIN { exit !(r + 0 > 0 && b + 0 > 0) }' || {
    echo "membership gate: rebuild applied no background repairs" >&2
    exit 1
}
awk -v w="$ewindow" -v s="$esteady" 'BEGIN { exit !(w + 0 <= 3 * s) }' || {
    echo "membership gate: handoff-window p99 ${ewindow}us > 3x steady ${esteady}us" >&2
    exit 1
}
awk -v d="$ediv" -v m="$emoved" 'BEGIN { exit !(d + 0 == 0 && m + 0 > 0) }' || {
    echo "membership gate: expansion left divergence or moved no keys" >&2
    exit 1
}
echo "membership gate ok: kill p99 ${ksteady}->${kwindow}us," \
     "${krep} rebuild repairs (${kbgw} bg writes), divergence ${kdiv};" \
     "join p99 ${esteady}->${ewindow}us, ${emoved} keys moved," \
     "divergence ${ediv}"

echo "=== CI OK ==="
