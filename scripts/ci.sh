#!/usr/bin/env bash
#
# CI gate: build the release and sanitizer presets, run the full
# test suite on both (any ASan/UBSan finding fails the run), then
# regenerate the tracked perf JSONs (BENCH_kernel.json from the
# kernel ablation, BENCH_kv.json from the KV service bench) so the
# perf trajectory stays machine-readable across PRs.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "=== release: configure + build ==="
cmake --preset release
cmake --build --preset release -j"${JOBS}"

echo "=== release: ctest ==="
ctest --preset release -j"${JOBS}"

echo "=== sanitize (ASan+UBSan): configure + build ==="
cmake --preset sanitize
cmake --build --preset sanitize -j"${JOBS}"

echo "=== sanitize: ctest ==="
# halt_on_error turns any UBSan diagnostic into a test failure
# (ASan aborts on its own); leak detection stays on by default.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --preset sanitize -j"${JOBS}"

echo "=== sanitize: hot-key KV smoke ==="
# One tiny skewed serving run end to end (preload + Zipfian traffic
# + hot-key cache + read coalescing/spreading + group commit) under
# ASan/UBSan; --smoke writes no JSON.
if [[ -x build-sanitize/svc_kv ]]; then
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ./build-sanitize/svc_kv --smoke
else
    echo "build-sanitize/svc_kv missing (google-benchmark not found?)" >&2
    exit 1
fi

echo "=== regenerate tracked bench JSONs ==="
if [[ -x build/ablation_kernel && -x build/svc_kv ]]; then
    ./build/ablation_kernel
    ./build/svc_kv
else
    echo "bench binaries missing (google-benchmark not found?)" >&2
    exit 1
fi

echo "=== CI OK ==="
