#!/usr/bin/env bash
#
# CI gate: static analysis first (bluedbm-lint, the hardened lint
# build and standalone-header compilation -- cheap failures
# short-circuit the expensive smokes), then build the release and
# sanitizer presets, run the full test suite on both (any
# ASan/UBSan finding fails the run), then regenerate the tracked
# perf JSONs (BENCH_kernel.json from the kernel ablation,
# BENCH_kv.json from the KV service bench) so the perf trajectory
# stays machine-readable across PRs.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "=== static analysis: bluedbm-lint ==="
# Determinism, hot-path allocation discipline, [[nodiscard]] surface
# and include hygiene; zero unsuppressed findings or the run stops
# here. docs/static_analysis.md has the rule catalog.
python3 tools/lint/bluedbm_lint.py

echo "=== static analysis: lint self-tests ==="
# Both directions of the gate: every rule fires on its known-bad
# fixture and stays quiet on known-good code.
python3 tools/lint/test_lint.py

echo "=== static analysis: hardened build + standalone headers ==="
# -Wconversion -Wshadow -Wextra-semi -Wnon-virtual-dtor
# -Wdouble-promotion promoted to errors across src/, plus one
# generated TU per public header proving each compiles standalone.
cmake --preset lint
cmake --build --preset lint -j"${JOBS}"

echo "=== release: configure + build ==="
cmake --preset release
cmake --build --preset release -j"${JOBS}"

echo "=== release: ctest ==="
ctest --preset release -j"${JOBS}"

echo "=== sanitize (ASan+UBSan): configure + build ==="
cmake --preset sanitize
cmake --build --preset sanitize -j"${JOBS}"

echo "=== sanitize: ctest ==="
# halt_on_error turns any UBSan diagnostic into a test failure
# (ASan aborts on its own); leak detection stays on by default.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --preset sanitize -j"${JOBS}"

echo "=== sanitize: hot-key KV smoke ==="
# One tiny skewed serving run end to end (preload + Zipfian traffic
# + hot-key cache + read coalescing/spreading + group commit) under
# ASan/UBSan; --smoke writes no JSON.
if [[ -x build-sanitize/svc_kv ]]; then
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ./build-sanitize/svc_kv --smoke
else
    echo "build-sanitize/svc_kv missing (google-benchmark not found?)" >&2
    exit 1
fi

echo "=== sanitize: traced KV smoke + span-tree check ==="
# The same smoke with the request tracer on: --trace-out exports the
# sampled span trees as Chrome trace-event JSON. The binary gates
# the span-sum identity (stage durations telescope to e2e latency);
# the python check then proves the artifact itself is loadable and
# that at least one sampled operation's tree is complete from the
# service root down to a NAND leaf -- all under ASan/UBSan.
TRACE_JSON="build-sanitize/smoke_trace.json"
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-sanitize/svc_kv --smoke --trace-out "${TRACE_JSON}" \
    --slow-trace-us 2000
python3 - "${TRACE_JSON}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)  # must parse as strict JSON
events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
if not events:
    sys.exit("trace JSON holds no span events")
# Group spans by trace (pid) and walk one NAND leaf to its root.
traces = {}
for e in events:
    traces.setdefault(e["pid"], {})[e["args"]["span"]] = e
complete = 0
for spans in traces.values():
    names = {e["name"] for e in spans.values()}
    if "svc.queue" not in names:
        continue
    for e in spans.values():
        if not e["name"].startswith("nand."):
            continue
        hop = e
        while hop["args"]["parent"] != -1:
            hop = spans[hop["args"]["parent"]]
        if hop["name"].startswith("kv."):
            complete += 1
            break
if complete == 0:
    sys.exit("no sampled trace is complete from admission "
             "(svc.queue under a kv.* root) to a NAND leaf")
print(f"trace check ok: {len(traces)} traces retained, "
      f"{complete} complete to a NAND leaf")
EOF

echo "=== sanitize: quorum fault-injection smoke ==="
# W=1 puts against a node that fails every NAND program: quorum
# acks must still complete Ok, divergence must be counted, and one
# anti-entropy sweep must drain it to zero -- under ASan/UBSan.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-sanitize/svc_kv --smoke-quorum

echo "=== sanitize: node-kill + rebuild smoke ==="
# Fail-stop crash mid-phase under live load, Background-priority
# rebuild, final anti-entropy sweep: the binary itself gates zero
# post-rebuild divergence and a kill-window p99 within 3x of
# steady state -- under ASan/UBSan.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-sanitize/svc_kv --kill-node

echo "=== sanitize: ring-expansion smoke ==="
# A standby node joins mid-phase: dual-write handoff, throttled
# catch-up, atomic ring flip; gates zero divergence, moved keys,
# and a handoff-window p99 within 3x of steady -- under ASan/UBSan.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-sanitize/svc_kv --expand

echo "=== sanitize: aged-flash smoke ==="
# Pre-worn card at 80-90% occupancy under live load: wear-driven
# bit errors, the read-retry ladder, page poisoning + replica heal,
# bad-block retirement with live relocation, and capacity-pressure
# shedding. The binary gates aged p99 <= 3x fresh, zero post-heal
# divergence/corruption, a retired block, and the occupancy band
# -- all under ASan/UBSan (docs/aging.md).
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-sanitize/svc_kv --age

echo "=== sanitize: 100-node cluster KV smoke ==="
# The full cluster scale point (100 nodes, zipf 0.99, R=2/W=1)
# end to end under ASan/UBSan: ladder queue, next-hop routing and
# the KV service at the size the 10M ops/s target is gated at.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-sanitize/svc_kv --smoke-100

echo "=== regenerate tracked bench JSONs ==="
if [[ -x build/ablation_kernel && -x build/svc_kv ]]; then
    ./build/ablation_kernel
    ./build/svc_kv
else
    echo "bench binaries missing (google-benchmark not found?)" >&2
    exit 1
fi

echo "=== tracing overhead gate (BENCH_kernel.json) ==="
# Tracing must stay near-free when disabled: the kernel ablation
# runs the pooled event queue with and without per-event tracer
# touches (disabled tracer / untraced handles, best-of-5 per
# variant). The ladder queue roughly halved the per-event cost, so
# the same absolute tracer-check overhead is now a visibly larger
# *fraction* of an event: the floor is 90% of the plain rate
# (measured 0.92-1.00 across runs; the old 98% bound predates the
# ladder and would flake on noise, not regressions).
kernel_field() {
    awk -F'[:,]' -v k="\"$1\"" '$1 ~ k { gsub(/[[:space:]]/, "", $2); print $2 }' \
        BENCH_kernel.json
}
troff="$(kernel_field tracing_off_ratio)"
if [[ -z "$troff" ]]; then
    echo "tracing gate: BENCH_kernel.json missing tracing_off_ratio" >&2
    exit 1
fi
awk -v r="$troff" 'BEGIN { exit !(r + 0 >= 0.90) }' || {
    echo "tracing gate: disabled tracing costs $(awk -v r="$troff" \
        'BEGIN { printf "%.1f", 100 * (1 - r) }')% of event" \
        "throughput (ratio ${troff} < 0.90)" >&2
    exit 1
}
echo "tracing gate ok: traced-off/pooled ratio ${troff}"

echo "=== kernel scale gate (BENCH_kernel.json) ==="
# The cluster-scale trajectory: simulated event density must grow
# monotonically with node count (a flat or sinking curve means the
# kernel or the network stopped scaling), the payload-pool slab
# must actually be engaged by the message bench (a zero high-water
# mark means pooling silently disengaged), and the next-hop routing
# tables must stay compact at 100 nodes (the O(endpoints x n^2)
# tables this PR removed were ~10x this floor).
espd="$(kernel_field events_speedup)"
cn4="$(kernel_field cluster_n4_sim_events_per_sec)"
cn8="$(kernel_field cluster_n8_sim_events_per_sec)"
cn20="$(kernel_field cluster_n20_sim_events_per_sec)"
cn100="$(kernel_field cluster_n100_sim_events_per_sec)"
pslots="$(kernel_field message_payload_pool_slots)"
rbytes="$(kernel_field routing_table_bytes_n100)"
if [[ -z "$espd" || -z "$cn4" || -z "$cn8" || -z "$cn20" ||
      -z "$cn100" || -z "$pslots" || -z "$rbytes" ]]; then
    echo "kernel scale gate: BENCH_kernel.json missing fields" >&2
    exit 1
fi
# The pooled-vs-legacy floor that predates the ladder (>= 3x); the
# ladder itself measures ~7x, so a fall back below 3 means a real
# kernel regression, not noise.
awk -v s="$espd" 'BEGIN { exit !(s + 0 >= 3.0) }' || {
    echo "kernel scale gate: events_speedup ${espd} < 3.0" >&2
    exit 1
}
awk -v a="$cn4" -v b="$cn8" -v c="$cn20" -v d="$cn100" \
    'BEGIN { exit !(a + 0 < b + 0 && b + 0 < c + 0 && c + 0 < d + 0) }' || {
    echo "kernel scale gate: cluster event density not monotone" \
         "(${cn4} / ${cn8} / ${cn20} / ${cn100} sim events/s)" >&2
    exit 1
}
awk -v s="$pslots" 'BEGIN { exit !(s + 0 > 0) }' || {
    echo "kernel scale gate: payload pool high-water is 0 (pooling" \
         "disengaged in the message bench)" >&2
    exit 1
}
awk -v b="$rbytes" 'BEGIN { exit !(b + 0 > 0 && b + 0 < 300000) }' || {
    echo "kernel scale gate: 100-node routing tables ${rbytes} bytes" \
         "outside (0, 300000)" >&2
    exit 1
}
echo "kernel scale gate ok: density ${cn4} -> ${cn8} -> ${cn20} ->" \
     "${cn100} sim events/s, pool high-water ${pslots} slots," \
     "100-node routing ${rbytes} bytes"

echo "=== perf smoke gate (BENCH_kv.json) ==="
# The serving perf floors: 20-node throughput must hold >= 1.9M
# ops/s, the 4-node config (the one program interference used to
# sink) must hold >= 400k, the quorum-acked write tail must stay
# within 1.6x of the read tail, and read-priority suspension must
# actually engage under the mixed load (a silently disabled
# suspend-resume path would pass every latency gate on a lucky
# run). Catches regressions of the put path (quorum/batching), the
# read path, or the suspension machinery underneath both.
bench_field() {
    awk -F'[:,]' -v k="\"$1\"" '$1 ~ k { gsub(/[[:space:]]/, "", $2); print $2 }' \
        BENCH_kv.json
}
tput20="$(bench_field nodes20_tput_ops)"
tput8="$(bench_field nodes8_tput_ops)"
tput4="$(bench_field nodes4_tput_ops)"
tput100="$(bench_field nodes100_tput_ops)"
rp99="$(bench_field quorum_w1_read_p99_us)"
wp99="$(bench_field quorum_w1_write_p99_us)"
div="$(bench_field quorum_w1_divergent_after_sweep)"
susp="$(bench_field nodes20_suspended_programs)"
if [[ -z "$tput20" || -z "$tput8" || -z "$tput4" || -z "$tput100" ||
      -z "$rp99" || -z "$wp99" || -z "$div" || -z "$susp" ]]; then
    echo "perf gate: BENCH_kv.json missing fields" >&2
    exit 1
fi
awk -v t="$tput20" 'BEGIN { exit !(t + 0 >= 1900000) }' || {
    echo "perf gate: 20-node throughput $tput20 < 1.9M ops/s" >&2
    exit 1
}
awk -v t="$tput4" 'BEGIN { exit !(t + 0 >= 400000) }' || {
    echo "perf gate: 4-node throughput $tput4 < 400k ops/s" >&2
    exit 1
}
# The cluster-scale floor and trajectory: 100 nodes must clear the
# paper-scale 10M aggregate ops/s target, and throughput must grow
# monotonically across the whole 4/8/20/100 sweep (a kink anywhere
# means added nodes stopped paying for themselves).
awk -v t="$tput100" 'BEGIN { exit !(t + 0 >= 10000000) }' || {
    echo "perf gate: 100-node throughput $tput100 < 10M ops/s" >&2
    exit 1
}
awk -v a="$tput4" -v b="$tput8" -v c="$tput20" -v d="$tput100" \
    'BEGIN { exit !(a + 0 < b + 0 && b + 0 < c + 0 && c + 0 < d + 0) }' || {
    echo "perf gate: scaling not monotone" \
         "(${tput4} / ${tput8} / ${tput20} / ${tput100} ops/s)" >&2
    exit 1
}
awk -v w="$wp99" -v r="$rp99" 'BEGIN { exit !(w + 0 <= 1.6 * r) }' || {
    echo "perf gate: write p99 ${wp99}us > 1.6x read p99 ${rp99}us" >&2
    exit 1
}
awk -v d="$div" 'BEGIN { exit !(d + 0 == 0) }' || {
    echo "perf gate: divergence survived the repair sweep" >&2
    exit 1
}
awk -v s="$susp" 'BEGIN { exit !(s + 0 > 0) }' || {
    echo "perf gate: suspension never engaged at 20 nodes" >&2
    exit 1
}
# Span-sum acceptance on the traced 20-node run: sampled gets that
# reached NAND must telescope exactly -- their top-level span
# durations sum to the measured end-to-end latency (one simulated
# clock, so the tolerance is zero).
tchecked="$(bench_field traced_span_checked)"
terr="$(bench_field traced_span_sum_err_us)"
if [[ -z "$tchecked" || -z "$terr" ]]; then
    echo "perf gate: BENCH_kv.json missing traced-run fields" >&2
    exit 1
fi
awk -v c="$tchecked" -v e="$terr" \
    'BEGIN { exit !(c + 0 >= 1 && e + 0 == 0) }' || {
    echo "perf gate: span-sum check failed (${tchecked} checked," \
         "max err ${terr}us)" >&2
    exit 1
}
echo "perf gate ok: tput ${tput4}/${tput8}/${tput20}/${tput100}" \
     "ops/s (4/8/20/100n)," \
     "W=1 read p99 ${rp99}us, write p99 ${wp99}us," \
     "post-sweep divergence ${div}, ${susp} suspended programs," \
     "${tchecked} traced gets telescoped exactly"

echo "=== membership gate (BENCH_kv.json) ==="
# Elastic-membership floors at 20 nodes: crashing a node must not
# blow the serving tail past 3x steady state during detection, the
# rebuild must leave zero divergence and actually ride the
# Background flash class, and the ring expansion must move keys
# while holding the same 3x transition bound.
ksteady="$(bench_field member_kill_steady_p99_us)"
kwindow="$(bench_field member_kill_window_p99_us)"
kdiv="$(bench_field member_kill_divergent_final)"
kbgw="$(bench_field member_kill_bg_writes)"
krep="$(bench_field member_kill_rebuild_repairs)"
esteady="$(bench_field member_expand_steady_p99_us)"
ewindow="$(bench_field member_expand_window_p99_us)"
ediv="$(bench_field member_expand_divergent_final)"
emoved="$(bench_field member_expand_moved_keys)"
if [[ -z "$ksteady" || -z "$kwindow" || -z "$kdiv" || -z "$kbgw" ||
      -z "$krep" || -z "$esteady" || -z "$ewindow" ||
      -z "$ediv" || -z "$emoved" ]]; then
    echo "membership gate: BENCH_kv.json missing fields" >&2
    exit 1
fi
awk -v w="$kwindow" -v s="$ksteady" 'BEGIN { exit !(w + 0 <= 3 * s) }' || {
    echo "membership gate: kill-window p99 ${kwindow}us > 3x steady ${ksteady}us" >&2
    exit 1
}
awk -v d="$kdiv" 'BEGIN { exit !(d + 0 == 0) }' || {
    echo "membership gate: divergence survived the rebuild" >&2
    exit 1
}
awk -v r="$krep" -v b="$kbgw" 'BEGIN { exit !(r + 0 > 0 && b + 0 > 0) }' || {
    echo "membership gate: rebuild applied no background repairs" >&2
    exit 1
}
awk -v w="$ewindow" -v s="$esteady" 'BEGIN { exit !(w + 0 <= 3 * s) }' || {
    echo "membership gate: handoff-window p99 ${ewindow}us > 3x steady ${esteady}us" >&2
    exit 1
}
awk -v d="$ediv" -v m="$emoved" 'BEGIN { exit !(d + 0 == 0 && m + 0 > 0) }' || {
    echo "membership gate: expansion left divergence or moved no keys" >&2
    exit 1
}
# Phase attribution of the membership counters (registry snapshot
# deltas): the crash window -- not steady state -- must account for
# the detection timeouts and the dead transition. At 20 nodes the
# default detection knobs sit far above the steady tail, so steady
# must own exactly zero.
ksteadyto="$(bench_field member_kill_steady_read_timeouts)"
kwindowto="$(bench_field member_kill_window_read_timeouts)"
kwindowdead="$(bench_field member_kill_window_dead_transitions)"
if [[ -z "$ksteadyto" || -z "$kwindowto" || -z "$kwindowdead" ]]; then
    echo "membership gate: BENCH_kv.json missing phase-delta fields" >&2
    exit 1
fi
awk -v s="$ksteadyto" -v w="$kwindowto" -v d="$kwindowdead" \
    'BEGIN { exit !(s + 0 == 0 && w + 0 > 0 && d + 0 > 0) }' || {
    echo "membership gate: crash window does not own the detection" \
         "cost (steady ${ksteadyto} / window ${kwindowto} timeouts," \
         "${kwindowdead} dead transitions in window)" >&2
    exit 1
}
echo "membership gate ok: kill p99 ${ksteady}->${kwindow}us," \
     "${krep} rebuild repairs (${kbgw} bg writes), divergence ${kdiv};" \
     "join p99 ${esteady}->${ewindow}us, ${emoved} keys moved," \
     "divergence ${ediv}; crash window owns ${kwindowto} timeouts" \
     "(steady ${ksteadyto})"

echo "=== aging gate (BENCH_kv.json) ==="
# Aged-flash floors (docs/aging.md): serving on a worn card at
# 80-90% occupancy must hold p99 within 3x of fresh, every
# uncorrectable page must heal from a replica (zero divergence,
# zero corrupt keys, zero bad read-backs after convergence), wear
# must actually bite (>= 1 retired block, live pages relocated),
# and write amplification must be reported sane alongside the
# erase-count distribution.
afresh="$(bench_field age_fresh_p99_us)"
aaged="$(bench_field age_aged_p99_us)"
adiv="$(bench_field age_divergent_final)"
acorrupt="$(bench_field age_corrupt_final)"
abad="$(bench_field age_read_back_bad)"
aretired="$(bench_field age_retired_blocks)"
areloc="$(bench_field age_relocated_pages)"
awa="$(bench_field age_write_amp)"
autil="$(bench_field age_utilization)"
auncorr="$(bench_field age_uncorrectable_pages)"
if [[ -z "$afresh" || -z "$aaged" || -z "$adiv" || -z "$acorrupt" ||
      -z "$abad" || -z "$aretired" || -z "$areloc" || -z "$awa" ||
      -z "$autil" || -z "$auncorr" ]]; then
    echo "aging gate: BENCH_kv.json missing age_* fields" >&2
    exit 1
fi
awk -v a="$aaged" -v f="$afresh" 'BEGIN { exit !(a + 0 <= 3 * f) }' || {
    echo "aging gate: aged p99 ${aaged}us > 3x fresh ${afresh}us" >&2
    exit 1
}
awk -v d="$adiv" -v c="$acorrupt" -v b="$abad" \
    'BEGIN { exit !(d + 0 == 0 && c + 0 == 0 && b + 0 == 0) }' || {
    echo "aging gate: corruption survived convergence" \
         "(divergent ${adiv}, corrupt ${acorrupt}, bad ${abad})" >&2
    exit 1
}
awk -v u="$auncorr" -v r="$aretired" -v l="$areloc" \
    'BEGIN { exit !(u + 0 > 0 && r + 0 >= 1 && l + 0 > 0) }' || {
    echo "aging gate: wear never bit (${auncorr} uncorrectable," \
         "${aretired} retired, ${areloc} relocated)" >&2
    exit 1
}
awk -v w="$awa" 'BEGIN { exit !(w + 0 >= 1) }' || {
    echo "aging gate: write amplification ${awa} < 1" >&2
    exit 1
}
awk -v u="$autil" 'BEGIN { exit !(u + 0 >= 0.78 && u + 0 <= 0.93) }' || {
    echo "aging gate: occupancy ${autil} outside the 80-90% band" >&2
    exit 1
}
echo "aging gate ok: p99 ${afresh}->${aaged}us, WA ${awa}," \
     "occupancy ${autil}, ${aretired} retired / ${areloc} relocated," \
     "${auncorr} uncorrectable all healed"

echo "=== figure JSON bit-identity (wear defaults off) ==="
# The wear model defaults OFF (NandArray::setWearModel unarmed):
# the tracked figure reproductions must regenerate bit-identical,
# proving this PR's aging machinery costs the paper's numbers
# nothing.
for fig in fig12_latency:BENCH_fig12.json fig13_bandwidth:BENCH_fig13.json; do
    bin="build/${fig%%:*}"
    json="${fig##*:}"
    if [[ ! -x "$bin" ]]; then
        echo "figure gate: $bin missing" >&2
        exit 1
    fi
    cp "$json" "build/${json}.tracked"
    "./$bin" > /dev/null
    cmp "$json" "build/${json}.tracked" || {
        echo "figure gate: $json changed with wear defaults off" >&2
        exit 1
    }
done
echo "figure gate ok: fig12/fig13 JSONs bit-identical"

echo "=== CI OK ==="
