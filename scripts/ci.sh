#!/usr/bin/env bash
#
# CI gate: build the release and sanitizer presets, run the full
# test suite on both (any ASan/UBSan finding fails the run), then
# regenerate the tracked perf JSONs (BENCH_kernel.json from the
# kernel ablation, BENCH_kv.json from the KV service bench) so the
# perf trajectory stays machine-readable across PRs.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "=== release: configure + build ==="
cmake --preset release
cmake --build --preset release -j"${JOBS}"

echo "=== release: ctest ==="
ctest --preset release -j"${JOBS}"

echo "=== sanitize (ASan+UBSan): configure + build ==="
cmake --preset sanitize
cmake --build --preset sanitize -j"${JOBS}"

echo "=== sanitize: ctest ==="
# halt_on_error turns any UBSan diagnostic into a test failure
# (ASan aborts on its own); leak detection stays on by default.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --preset sanitize -j"${JOBS}"

echo "=== sanitize: hot-key KV smoke ==="
# One tiny skewed serving run end to end (preload + Zipfian traffic
# + hot-key cache + read coalescing/spreading + group commit) under
# ASan/UBSan; --smoke writes no JSON.
if [[ -x build-sanitize/svc_kv ]]; then
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ./build-sanitize/svc_kv --smoke
else
    echo "build-sanitize/svc_kv missing (google-benchmark not found?)" >&2
    exit 1
fi

echo "=== sanitize: quorum fault-injection smoke ==="
# W=1 puts against a node that fails every NAND program: quorum
# acks must still complete Ok, divergence must be counted, and one
# anti-entropy sweep must drain it to zero -- under ASan/UBSan.
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-sanitize/svc_kv --smoke-quorum

echo "=== regenerate tracked bench JSONs ==="
if [[ -x build/ablation_kernel && -x build/svc_kv ]]; then
    ./build/ablation_kernel
    ./build/svc_kv
else
    echo "bench binaries missing (google-benchmark not found?)" >&2
    exit 1
fi

echo "=== perf smoke gate (BENCH_kv.json) ==="
# The serving perf floors: 20-node throughput must hold >= 1.9M
# ops/s, the 4-node config (the one program interference used to
# sink) must hold >= 400k, the quorum-acked write tail must stay
# within 1.6x of the read tail, and read-priority suspension must
# actually engage under the mixed load (a silently disabled
# suspend-resume path would pass every latency gate on a lucky
# run). Catches regressions of the put path (quorum/batching), the
# read path, or the suspension machinery underneath both.
bench_field() {
    awk -F'[:,]' -v k="\"$1\"" '$1 ~ k { gsub(/[[:space:]]/, "", $2); print $2 }' \
        BENCH_kv.json
}
tput20="$(bench_field nodes20_tput_ops)"
tput4="$(bench_field nodes4_tput_ops)"
rp99="$(bench_field quorum_w1_read_p99_us)"
wp99="$(bench_field quorum_w1_write_p99_us)"
div="$(bench_field quorum_w1_divergent_after_sweep)"
susp="$(bench_field nodes20_suspended_programs)"
if [[ -z "$tput20" || -z "$tput4" || -z "$rp99" || -z "$wp99" ||
      -z "$div" || -z "$susp" ]]; then
    echo "perf gate: BENCH_kv.json missing fields" >&2
    exit 1
fi
awk -v t="$tput20" 'BEGIN { exit !(t + 0 >= 1900000) }' || {
    echo "perf gate: 20-node throughput $tput20 < 1.9M ops/s" >&2
    exit 1
}
awk -v t="$tput4" 'BEGIN { exit !(t + 0 >= 400000) }' || {
    echo "perf gate: 4-node throughput $tput4 < 400k ops/s" >&2
    exit 1
}
awk -v w="$wp99" -v r="$rp99" 'BEGIN { exit !(w + 0 <= 1.6 * r) }' || {
    echo "perf gate: write p99 ${wp99}us > 1.6x read p99 ${rp99}us" >&2
    exit 1
}
awk -v d="$div" 'BEGIN { exit !(d + 0 == 0) }' || {
    echo "perf gate: divergence survived the repair sweep" >&2
    exit 1
}
awk -v s="$susp" 'BEGIN { exit !(s + 0 > 0) }' || {
    echo "perf gate: suspension never engaged at 20 nodes" >&2
    exit 1
}
echo "perf gate ok: tput ${tput20}/${tput4} ops/s (20n/4n)," \
     "W=1 read p99 ${rp99}us, write p99 ${wp99}us," \
     "post-sweep divergence ${div}, ${susp} suspended programs"

echo "=== CI OK ==="
